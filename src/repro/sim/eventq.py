"""Event-queue implementations behind :class:`~repro.sim.engine.SimulationEngine`.

The engine's ordering contract is exact ``(time, priority, sequence)``
ascending order over the *pending* entries at every pop.  Two structures
implement it:

* :class:`HeapEventQueue` — the flat ``heapq`` the engine shipped with;
  O(log n) per operation, kept as the reference implementation the
  property tests pin the rewrite against.
* :class:`CalendarEventQueue` — a bucketed calendar queue for fleet-scale
  runs.  Time is partitioned into fixed-width buckets; an entry lands in
  the bucket of its timestamp with an O(1) append, and buckets are sorted
  *lazily*, each exactly once, when the clock reaches them.  Because the
  buckets partition time, the head of the active (sorted) bucket is always
  the global minimum, so pops are amortized O(1) plus one Timsort per
  bucket — and a month-long trace whose million arrivals are pushed up
  front costs a million appends, not a million heap sifts.

Determinism argument for the calendar queue: entries compare by the same
``(time, priority, sequence)`` key the heap used; within a bucket the lazy
sort orders them totally (sequence numbers are unique), across buckets the
time partition orders them, and an entry pushed *into* the active bucket is
inserted by ``bisect`` at its exact key position after the already-popped
prefix.  The property tests in ``tests/test_eventq.py`` drive both
implementations through randomized same-timestamp/priority workloads and
assert identical pop sequences.

The bucket width adapts to the observed event density: whenever the queue
grows past twice (or shrinks below a quarter of) the size at the last
calibration, the pending entries are rebucketed so the mean occupancy stays
near :data:`TARGET_OCCUPANCY`.  Resizes move every entry once, and the
doubling trigger amortizes them to O(1) per push.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right, insort_right
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .events import Event

#: One queue entry: the engine's full ordering key plus payload.
Entry = tuple[float, int, int, "Event"]

#: Mean entries per bucket the adaptive width aims for.  A little above 1
#: so the per-bucket Timsort runs on short runs (cheap, cache-friendly)
#: while bucket-management overhead stays amortized away.
TARGET_OCCUPANCY = 4.0

#: Entries below which the calendar degenerates gracefully: everything
#: sits in one bucket and behaves like a tiny sorted list.
_MIN_CALIBRATION_SIZE = 64


class HeapEventQueue:
    """Reference implementation: a flat binary heap of entries."""

    def __init__(self) -> None:
        self._heap: list[Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self) -> Entry:
        return heapq.heappop(self._heap)

    def peek(self) -> Entry | None:
        return self._heap[0] if self._heap else None


class CalendarEventQueue:
    """Bucketed calendar queue with lazy per-bucket sorting.

    Entries whose bucket the clock has not reached yet live in unsorted
    per-bucket lists (``dict`` keyed by bucket index, so empty buckets
    cost nothing); a lazy min-heap of bucket indices finds the next
    non-empty bucket.  The *active* bucket — the one currently being
    drained — is a sorted list with a read cursor; entries pushed at or
    before the active window are inserted behind the cursor with
    ``bisect``, preserving exact pop order.
    """

    def __init__(self, width: float = 1.0) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self._width = width
        self._buckets: dict[int, list[Entry]] = {}
        self._bucket_heap: list[int] = []  # lazy min-heap of bucket keys
        self._active: list[Entry] = []
        self._active_pos = 0
        self._active_key: int | None = None
        self._count = 0
        # Adaptive-width calibration state.
        self._calibrated_at = _MIN_CALIBRATION_SIZE

    def __len__(self) -> int:
        return self._count

    @property
    def bucket_width(self) -> float:
        return self._width

    # -- internals ---------------------------------------------------------------

    def _bucket_of(self, time: float) -> int:
        return int(time // self._width)

    def _advance(self) -> bool:
        """Make the next non-empty bucket active; False when drained."""
        if self._active_pos < len(self._active):
            return True
        self._active = []
        self._active_pos = 0
        heap = self._bucket_heap
        while heap:
            key = heap[0]
            bucket = self._buckets.get(key)
            if bucket is None:
                heapq.heappop(heap)  # stale key from a resize
                continue
            heapq.heappop(heap)
            del self._buckets[key]
            bucket.sort()
            self._active = bucket
            self._active_key = key
            return True
        return False

    def _recalibrate(self) -> None:
        """Pick a bucket width matching current density and rebucket.

        Width = pending time span / (count / target occupancy): the mean
        bucket then holds ~TARGET_OCCUPANCY entries regardless of how
        sparse or dense the trace is at this point of the run.
        """
        entries = self._drain_all()
        self._calibrated_at = max(_MIN_CALIBRATION_SIZE, len(entries))
        if len(entries) >= _MIN_CALIBRATION_SIZE:
            low = min(entry[0] for entry in entries)
            high = max(entry[0] for entry in entries)
            span = high - low
            if span > 0:
                self._width = max(span * TARGET_OCCUPANCY / len(entries), 1e-9)
        self._buckets = {}
        self._bucket_heap = []
        self._active = []
        self._active_pos = 0
        self._active_key = None
        self._count = 0
        for entry in entries:
            self._push_raw(entry)

    def _drain_all(self) -> list[Entry]:
        entries = self._active[self._active_pos :]
        for bucket in self._buckets.values():
            entries.extend(bucket)
        return entries

    def _push_raw(self, entry: Entry) -> None:
        key = self._bucket_of(entry[0])
        if self._active_key is not None and key <= self._active_key:
            # Lands in (or before) the window being drained: insert at its
            # exact key position after the cursor — everything before the
            # cursor has already been popped and compared <= this entry.
            index = bisect_right(self._active, entry, lo=self._active_pos)
            self._active.insert(index, entry)
        else:
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [entry]
                heapq.heappush(self._bucket_heap, key)
            else:
                bucket.append(entry)
        self._count += 1

    # -- queue API ----------------------------------------------------------------

    def push(self, entry: Entry) -> None:
        if self._count >= 2 * self._calibrated_at:
            self._recalibrate()
        self._push_raw(entry)

    def pop(self) -> Entry:
        if not self._advance():
            raise IndexError("pop from an empty CalendarEventQueue")
        entry = self._active[self._active_pos]
        self._active_pos += 1
        self._count -= 1
        if self._count < self._calibrated_at // 4:
            if self._count >= _MIN_CALIBRATION_SIZE:
                self._recalibrate()
            else:
                self._calibrated_at = _MIN_CALIBRATION_SIZE
        return entry

    def peek(self) -> Entry | None:
        if not self._advance():
            return None
        return self._active[self._active_pos]


# Either implementation satisfies the engine's needs; annotate with the
# union rather than a Protocol so mypy --strict keeps the exact types.
EventQueue = HeapEventQueue | CalendarEventQueue
