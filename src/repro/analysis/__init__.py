"""simlint: AST-based static enforcement of the simulator's invariants.

The golden tests pin *that* runs are reproducible; this package pins *why*
— by making the practices that keep them reproducible (seed-threaded RNG,
engine-clock time, control-plane-owned mutation, explicit event ordering,
taint-free result paths, a single job-lifecycle table) machine-checkable
at review time instead of tribal knowledge:

==== ====================== =====================================================
Rule Name                   Invariant
==== ====================== =====================================================
R1   unseeded-rng           no ambient random/numpy.random state in sim code
R2   wall-clock             no host-clock reads where the engine clock rules
R3   lifecycle-write        job lifecycle fields mutate only via the control plane
R4   event-priority         every Event subclass holds a unique PRIORITY rank
R5   float-equality         no exact float ==/!= in result-producing code
R6   unordered-iteration    no bare set iteration in order-sensitive paths
R7   stray-deepcopy         live sims copy only via controlplane/snapshot.py
R8   exception-hygiene      no bare/swallowed broad excepts; lifecycle errors
                            propagate
R9   determinism-taint      arbitrary iteration order never reaches a result
                            sink (flow-sensitive taint, full chain reported)
R10  unordered-accumulation no float accumulation over unordered iterables
R11  lifecycle-typestate    LEGAL_TRANSITIONS and its call sites agree; every
                            edge is exercisable
R12  fingerprint-coverage   every frozen-spec field reaches its fingerprint
R13  frozen-mutation        no object.__setattr__ on specs after construction
==== ====================== =====================================================

Front doors: ``python -m repro.analysis [paths…]`` and ``tcloud lint``
(both support the incremental cache: ``--jobs``, ``--cache-dir``,
``--no-cache``, ``--changed``, ``--stats``).  Waivers: ``# simlint:
disable=R3`` inline (see :mod:`repro.analysis.suppressions`) or the
committed baseline (:mod:`repro.analysis.baseline`).  CI fails on any
non-baselined finding and verifies the baseline itself with
``scripts/simlint_baseline.py --check``.
"""

from __future__ import annotations

from .baseline import Baseline
from .cache import LintCache, engine_fingerprint, file_key
from .context import FileContext
from .findings import Finding
from .registry import BaseRule, ProjectRule, Rule, all_rules, rule_by_id
from .runner import (
    AnalysisReport,
    LintStats,
    analyze_contexts,
    analyze_paths,
    analyze_source,
    git_changed_files,
    run_lint,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaseRule",
    "FileContext",
    "Finding",
    "LintCache",
    "LintStats",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_contexts",
    "analyze_paths",
    "analyze_source",
    "engine_fingerprint",
    "file_key",
    "git_changed_files",
    "rule_by_id",
    "run_lint",
]
