"""Per-file analysis context shared by every rule.

A :class:`FileContext` owns the parsed AST, the raw source lines, the
suppression map, and a small import-alias index that syntactic rules need
constantly (which local names refer to the ``random`` / ``time`` /
``numpy`` modules, which names were imported *from* them).  Building it
once per file keeps each rule a pure ``check(ctx) -> findings`` function.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from .findings import Finding
from .suppressions import SuppressionMap, parse_suppressions


@dataclass
class ImportIndex:
    """Module aliases and from-imports visible in one file.

    ``module_aliases`` maps a local name to the dotted module it denotes
    (``np`` → ``numpy``, ``_time`` → ``time``); ``from_imports`` maps a
    local name to ``"module.attr"`` for ``from module import attr [as name]``.
    """

    module_aliases: dict[str, str] = field(default_factory=dict)
    from_imports: dict[str, str] = field(default_factory=dict)

    def resolve_call_chain(self, node: ast.expr) -> str | None:
        """Dotted path of an attribute/name chain with aliases resolved.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``;
        a name bound by ``from copy import deepcopy`` resolves to
        ``copy.deepcopy``.  Returns ``None`` for anything that is not a
        plain name/attribute chain rooted at an imported module.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = current.id
        if root in self.module_aliases:
            parts.append(self.module_aliases[root])
        elif root in self.from_imports:
            parts.append(self.from_imports[root])
        elif parts:
            parts.append(root)
        else:
            return None
        return ".".join(reversed(parts))


def _build_import_index(tree: ast.AST) -> ImportIndex:
    index = ImportIndex()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                index.module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name != "*":
                    index.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return index


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: str  # posix-style, as reported in findings
    source: str
    tree: ast.Module
    lines: list[str]
    suppressions: SuppressionMap
    imports: ImportIndex

    @classmethod
    def from_source(cls, source: str, path: str) -> "FileContext":
        """Parse *source*; raises :class:`SyntaxError` on unparseable input."""
        posix = PurePosixPath(path).as_posix()
        tree = ast.parse(source, filename=posix)
        return cls(
            path=posix,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            suppressions=parse_suppressions(source, posix),
            imports=_build_import_index(tree),
        )

    def source_line(self, line: int) -> str:
        """Stripped text of 1-based *line* (empty when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule_id: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at *node*."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=rule_id,
            path=self.path,
            line=line,
            col=col,
            message=message,
            source_line=self.source_line(line),
        )

    def path_matches(self, fragments: tuple[str, ...]) -> bool:
        """True when the context path contains any of the *fragments*."""
        return any(fragment in self.path for fragment in fragments)
