"""Command-line entry point: ``python -m repro.analysis [paths…]``.

Exit codes: 0 — no new findings; 1 — new (non-baselined) findings or
malformed suppressions; 2 — usage/environment error.  ``tcloud lint``
delegates here, so both front doors behave identically.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .baseline import Baseline
from .registry import all_rules
from .runner import analyze_paths

DEFAULT_BASELINE = "simlint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "simlint: static invariant analysis for the simulator — "
            "determinism, control-plane encapsulation, event ordering."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline JSON of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every registered rule"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    return parser


def _list_rules() -> str:
    blocks = []
    for rule in all_rules():
        where = ", ".join(rule.scope) if rule.scope else "all analyzed files"
        exempt = f" (exempt: {', '.join(rule.exempt)})" if rule.exempt else ""
        blocks.append(
            f"{rule.id} {rule.name}\n    scope: {where}{exempt}\n    {rule.rationale}"
        )
    return "\n".join(blocks)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        sys.stdout.write(_list_rules() + "\n")
        return 0

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE

    try:
        report = analyze_paths(args.paths)
    except FileNotFoundError as exc:
        sys.stderr.write(f"{exc}\n")
        return 2

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(report.findings).save(target)
        sys.stdout.write(
            f"simlint: wrote {len(report.findings)} finding(s) to {target}\n"
        )
        return 0

    baseline = None
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            sys.stderr.write(f"simlint: cannot read baseline {baseline_path}: {exc}\n")
            return 2
    new, baselined = report.partition(baseline)

    if args.format == "json":
        payload = {
            "files_analyzed": report.files_analyzed,
            "rules": list(report.rules_run),
            "new": [finding.as_dict() for finding in new],
            "baselined": [finding.as_dict() for finding in baselined],
        }
        sys.stdout.write(json.dumps(payload, indent=2) + "\n")
    else:
        for finding in new:
            sys.stdout.write(finding.render() + "\n")
        status = (
            f"simlint: {len(new)} new finding(s), {len(baselined)} baselined, "
            f"{report.files_analyzed} file(s), {len(report.rules_run)} rule(s)"
        )
        sys.stdout.write(status + "\n")
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
