"""Command-line entry point: ``python -m repro.analysis [paths…]``.

Exit codes: 0 — no new findings; 1 — new (non-baselined) findings or
malformed suppressions; 2 — usage/environment error.  ``tcloud lint``
delegates here, so both front doors behave identically — including the
incremental-cache flags (``--jobs``, ``--cache-dir``, ``--no-cache``,
``--changed``, ``--stats``).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from .baseline import Baseline
from .cache import ENV_CACHE_DIR, LintCache, default_cache_dir
from .registry import all_rules
from .runner import AnalysisReport, git_changed_files, run_lint

DEFAULT_BASELINE = "simlint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "simlint: static invariant analysis for the simulator — "
            "determinism taint, lifecycle typestate, fingerprint coverage, "
            "control-plane encapsulation, event ordering."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline JSON of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every registered rule"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze cache misses over N worker processes (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "incremental cache directory (default: $"
            f"{ENV_CACHE_DIR} or {default_cache_dir()})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (re-analyze every file)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "only analyze files changed vs git HEAD (fast pre-commit check; "
            "cross-file rules are authoritative only on full runs)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule timing and cache hit rate to stderr",
    )
    return parser


def _list_rules() -> str:
    blocks = []
    for rule in all_rules():
        where = ", ".join(rule.scope) if rule.scope else "all analyzed files"
        exempt = f" (exempt: {', '.join(rule.exempt)})" if rule.exempt else ""
        blocks.append(
            f"{rule.id} {rule.name}\n    scope: {where}{exempt}\n    {rule.rationale}"
        )
    return "\n".join(blocks)


def _render_stats(report: AnalysisReport) -> str:
    stats = report.stats
    lines = [
        f"simlint stats: {stats.files} file(s), "
        f"cache {stats.cache_hits} hit / {stats.cache_misses} miss "
        f"({stats.hit_rate * 100.0:.1f}% hit rate), "
        f"wall {stats.wall_seconds:.3f}s"
    ]
    timed = sorted(
        set(stats.check_seconds) | set(stats.reduce_seconds),
        key=lambda rule_id: -(
            stats.check_seconds.get(rule_id, 0.0)
            + stats.reduce_seconds.get(rule_id, 0.0)
        ),
    )
    for rule_id in timed:
        check = stats.check_seconds.get(rule_id, 0.0)
        reduce_s = stats.reduce_seconds.get(rule_id, 0.0)
        lines.append(
            f"  {rule_id:>4s}  check {check * 1000.0:8.1f}ms"
            + (f"  reduce {reduce_s * 1000.0:8.1f}ms" if rule_id in stats.reduce_seconds else "")
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        sys.stdout.write(_list_rules() + "\n")
        return 0

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE

    cache: LintCache | None = None
    if not args.no_cache:
        root = Path(args.cache_dir) if args.cache_dir else None
        cache = LintCache(root)

    files = None
    if args.changed:
        try:
            files = git_changed_files(args.paths)
        except (OSError, subprocess.CalledProcessError) as exc:
            sys.stderr.write(f"simlint: --changed requires a git checkout: {exc}\n")
            return 2
        if not files:
            sys.stdout.write("simlint: no changed python files\n")
            return 0

    try:
        report = run_lint(args.paths, jobs=max(1, args.jobs), cache=cache, files=files)
    except FileNotFoundError as exc:
        sys.stderr.write(f"{exc}\n")
        return 2

    if args.stats:
        sys.stderr.write(_render_stats(report) + "\n")

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(report.findings).save(target)
        sys.stdout.write(
            f"simlint: wrote {len(report.findings)} finding(s) to {target}\n"
        )
        return 0

    baseline = None
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            sys.stderr.write(f"simlint: cannot read baseline {baseline_path}: {exc}\n")
            return 2
    new, baselined = report.partition(baseline)

    if args.format == "json":
        payload = {
            "files_analyzed": report.files_analyzed,
            "rules": list(report.rules_run),
            "new": [finding.as_dict() for finding in new],
            "baselined": [finding.as_dict() for finding in baselined],
            "cache": {
                "hits": report.stats.cache_hits,
                "misses": report.stats.cache_misses,
            },
        }
        sys.stdout.write(json.dumps(payload, indent=2) + "\n")
    else:
        for finding in new:
            sys.stdout.write(finding.render() + "\n")
        status = (
            f"simlint: {len(new)} new finding(s), {len(baselined)} baselined, "
            f"{report.files_analyzed} file(s), {len(report.rules_run)} rule(s)"
        )
        sys.stdout.write(status + "\n")
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
