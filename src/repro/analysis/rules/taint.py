"""Rules R9/R10: flow-aware determinism taint analysis.

Both rules share the intraprocedural taint engine in
:mod:`repro.analysis.dataflow`.  The split mirrors how violations are
fixed: R9 findings (arbitrary order reaching a result sink) are fixed by
sorting before materialising; R10 findings (float accumulation in
arbitrary order) are fixed by folding over a sorted iterable, because
float addition is not associative and the sum's low bits depend on
visit order.

Unlike the syntactic R6 (bare iteration over a set expression), these
rules let unordered data *exist* freely — only materialising its order
into a result is flagged, and the finding message carries the full
source→sink taint chain so the fix site is obvious.
"""

from __future__ import annotations

from typing import Iterator

from .. import scopes
from ..context import FileContext
from ..dataflow import TaintReach, analyze_taint
from ..findings import Finding
from ..registry import Rule, register


def _sink_phrase(reach: TaintReach) -> str:
    kind, _, detail = reach.sink.partition(":")
    if kind == "call":
        return f"reaches result sink {detail}()"
    if kind == "loop-call":
        return f"drives sink {detail}() once per arbitrary-order iteration"
    if kind == "return":
        return "escapes via return with arbitrary element order"
    if kind == "sort-key":
        return "is read by a sort key, making the sort order racy"
    if kind == "idkeys-sort":
        return "is ordered by memory address (sorting id()-keyed data)"
    if kind == "raise":
        return "is embedded in a raised exception message"
    return f"reaches {reach.sink}"


@register
class DeterminismTaintRule(Rule):
    """R9: nondeterministic iteration order must not reach a result."""

    id = "R9"
    name = "determinism-taint"
    rationale = (
        "Unordered collections are fine locally, but once their arbitrary "
        "iteration order is materialised into a metrics row, fingerprint, "
        "event enqueue, RNG seed, or sort key, results differ run to run. "
        "The taint chain in the message shows where to insert sorted()."
    )
    scope = scopes.SIMULATION

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for reach in analyze_taint(ctx):
            if reach.sink == "accumulation":
                continue  # R10's half of the shared pass
            yield ctx.finding(
                self.id,
                reach.node,
                f"nondeterministic order {_sink_phrase(reach)}; "
                f"taint path: {reach.taint.chain()}; "
                "iterate a sorted(...) view before the order is observable",
            )


@register
class UnorderedAccumulationRule(Rule):
    """R10: float accumulation must visit elements in a defined order."""

    id = "R10"
    name = "unordered-accumulation"
    rationale = (
        "Float addition is not associative: summing in set/scandir order "
        "changes the low bits run to run, which goldens and federated "
        "goodput comparisons then report as regressions. Accumulate over "
        "sorted(...) (or math.fsum over a sorted view) instead."
    )
    scope = scopes.SIMULATION

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for reach in analyze_taint(ctx):
            if reach.sink != "accumulation":
                continue
            yield ctx.finding(
                self.id,
                reach.node,
                "float accumulation over an unordered iterable is "
                "order-dependent in its low bits; "
                f"taint path: {reach.taint.chain()}; "
                "accumulate over a sorted(...) view",
            )
