"""Rules R1/R2: simulation code must be a pure function of the seed.

The golden tests pin byte-identical summaries; both rules close the two
classic leaks — ambient RNG state and the host's wall clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import scopes
from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

#: numpy.random attributes that *construct* seeded generators (allowed).
_SEEDED_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "BitGenerator"}
)

#: Wall-clock reads that leak host time into a simulation.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class UnseededRngRule(Rule):
    """R1: no ambient ``random`` / ``numpy.random`` state in simulation code."""

    id = "R1"
    name = "unseeded-rng"
    rationale = (
        "Module-level RNG state makes runs depend on import order and prior "
        "draws; every stochastic component must thread a numpy Generator "
        "seeded from SimConfig so one seed determines the whole run."
    )
    scope = scopes.SIMULATION

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.finding(
                            self.id,
                            node,
                            "stdlib 'random' uses hidden module-level state; "
                            "thread a numpy.random.Generator from SimConfig instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield ctx.finding(
                        self.id,
                        node,
                        "stdlib 'random' uses hidden module-level state; "
                        "thread a numpy.random.Generator from SimConfig instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = ctx.imports.resolve_call_chain(node.func)
                if dotted is None:
                    continue
                if dotted.startswith("random."):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"call to stdlib '{dotted}' draws from hidden global RNG "
                        "state; thread a seeded numpy.random.Generator instead",
                    )
                elif dotted.startswith("numpy.random."):
                    attr = dotted.split(".")[-1]
                    if attr not in _SEEDED_CONSTRUCTORS:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"'{dotted}' draws from numpy's global RNG; use a "
                            "Generator threaded from SimConfig "
                            "(numpy.random.default_rng(seed))",
                        )


@register
class WallClockRule(Rule):
    """R2: no host wall-clock reads in simulation code."""

    id = "R2"
    name = "wall-clock"
    rationale = (
        "Simulated time is the engine's clock; reading the host clock makes "
        "behaviour machine- and load-dependent. Observational timing (perf "
        "counters) must never feed a simulated decision and needs an "
        "explicit inline waiver."
    )
    scope = scopes.SIMULATION

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.resolve_call_chain(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self.id,
                    node,
                    f"wall-clock read '{dotted}' in simulation code; use the "
                    "engine clock ('now') — or waive explicitly if this is "
                    "observational-only timing",
                )
