"""Rule R11: the lifecycle table and its call sites must agree.

The 9-state job lifecycle is enforced dynamically by
``JobLifecycle.advance`` — but a dynamic check only fires on the paths a
test happens to execute.  R11 cross-checks statically, project-wide:

* every transition call site's from-state evidence must intersect the
  legal sources of its target (an empty intersection means the call can
  only ever raise ``IllegalTransitionError``);
* every edge in ``LEGAL_TRANSITIONS`` must be exercisable from some call
  site — a table edge no code can take is dead weight whose semantics
  drift silently the next time the machine changes.

The heavy lifting (symbolic evidence extraction, table parsing, edge
coverage) lives in :mod:`repro.analysis.typestate`; this rule is the
map/reduce shell, so per-file summaries ride the incremental cache.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from .. import scopes
from ..context import FileContext
from ..findings import Finding
from ..registry import ProjectRule, register
from ..typestate import (
    Summary,
    build_model,
    edge_coverage,
    extract_typestate,
    resolve_evidence,
)


@register
class LifecycleTypestateRule(ProjectRule):
    """R11: every transition call site takes a legal, covered edge."""

    id = "R11"
    name = "lifecycle-typestate"
    rationale = (
        "LEGAL_TRANSITIONS and the controller's transition call sites are "
        "two copies of one state machine; when they drift, illegal edges "
        "surface as runtime IllegalTransitionError on untested paths, and "
        "uncovered table edges rot. Static cross-checking pins both."
    )
    scope = scopes.SIMULATION

    def extract(self, ctx: FileContext) -> Summary | None:
        return extract_typestate(ctx)

    def reduce(self, summaries: Sequence[tuple[str, object]]) -> Iterator[Finding]:
        typed = [
            (path, summary)
            for path, summary in summaries
            if isinstance(summary, dict)
        ]
        model = build_model(typed)
        if model is None:
            return  # no table in the analyzed set: nothing to check against
        for path, site in model.callsites:
            target = str(site["target"])
            facts = site.get("facts")
            assert isinstance(facts, list)
            sources = model.sources_of(target)
            if target in model.states and not sources:
                yield self._finding(
                    path,
                    site,
                    f"transition call targets {target}, which has no legal "
                    "in-edges in LEGAL_TRANSITIONS; this call site can only "
                    "raise IllegalTransitionError",
                )
                continue
            if target not in model.states:
                yield self._finding(
                    path,
                    site,
                    f"transition call targets unknown lifecycle state {target} "
                    "(not a key of LEGAL_TRANSITIONS)",
                )
                continue
            evidence = resolve_evidence(
                facts, model.states, model.edges, model.jobstate_of
            )
            if not evidence & sources:
                yield self._finding(
                    path,
                    site,
                    f"illegal lifecycle edge: {site['function']}() reaches this "
                    f"call with from-state evidence {{{', '.join(sorted(evidence))}}} "
                    f"but {target} is only reachable from "
                    f"{{{', '.join(sorted(sources))}}}",
                )
        _covered, uncovered = edge_coverage(model)
        if uncovered:
            rendered = ", ".join(
                f"{source}->{target}" for source, target in sorted(uncovered)
            )
            yield Finding(
                rule_id=self.id,
                path=model.table_path,
                line=model.table_line,
                col=model.table_col,
                message=(
                    f"LEGAL_TRANSITIONS edge(s) {rendered} are not exercisable "
                    "from any transition call site; dead table edges drift "
                    "silently — remove them or add the transition path"
                ),
                source_line=model.table_source_line,
            )

    def _finding(self, path: str, site: dict[str, object], message: str) -> Finding:
        return Finding(
            rule_id=self.id,
            path=path,
            line=int(site["line"]),  # type: ignore[call-overload]
            col=int(site["col"]),  # type: ignore[call-overload]
            message=message,
            source_line=str(site["source_line"]),
        )
