"""Rules R3/R7: every mutation of live simulation state has one owner.

PR 3 funnelled all job/cluster mutations through ``ClusterController`` and
all live-simulation copying through ``controlplane/snapshot.py``.  These
rules keep it that way: a stray ``job.state = …`` in a scheduler or an ad
hoc ``deepcopy`` of a live simulator reintroduces exactly the split-brain
bookkeeping that PR 3 removed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import scopes
from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

#: Job lifecycle / runtime-state fields only the control plane (or the
#: Job transition methods themselves) may assign.
_LIFECYCLE_FIELDS = frozenset(
    {
        "state",
        "attempts",
        "preemptions",
        "remaining_work",
        "first_start_time",
        "last_start_time",
        "end_time",
        "current_slowdown",
        "current_nodes",
        "last_nodes",
        "current_gpus",
        "current_setup_s",
        "gpu_seconds_used",
        "failure_category",
        "preemptible",
        "request",
    }
)


def _assign_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


@register
class LifecycleWriteRule(Rule):
    """R3: job lifecycle fields are assigned only by the control plane."""

    id = "R3"
    name = "lifecycle-write"
    rationale = (
        "Direct writes to job state bypass lifecycle validation, the "
        "transition log, and churn accounting; every mutation must go "
        "through ClusterController (or a Job transition method it calls)."
    )
    exempt = scopes.LIFECYCLE_OWNERS

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            for target in _assign_targets(node):
                if not isinstance(target, ast.Attribute):
                    continue
                if target.attr not in _LIFECYCLE_FIELDS:
                    continue
                # A class assigning its *own* attribute of the same name is
                # some other object's internal state, not a reach into a Job.
                if isinstance(target.value, ast.Name) and target.value.id == "self":
                    continue
                yield ctx.finding(
                    self.id,
                    target,
                    f"direct write to lifecycle field '.{target.attr}' outside "
                    "the control plane; route the mutation through "
                    "ClusterController so it is validated and logged",
                )


@register
class DeepcopyRule(Rule):
    """R7: live simulations are copied only via ``controlplane/snapshot.py``."""

    id = "R7"
    name = "stray-deepcopy"
    rationale = (
        "deepcopy of a live simulator must rebind every cross-reference "
        "(controller, scheduler, index, metrics) consistently; "
        "controlplane.snapshot is the one audited implementation. Ad hoc "
        "deep copies silently fork half the object graph."
    )
    exempt = scopes.SNAPSHOT_MODULE

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "copy" and node.level == 0 and any(
                    alias.name == "deepcopy" for alias in node.names
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        "import of copy.deepcopy outside controlplane/snapshot.py; "
                        "use snapshot()/fork() for live sims (or copy shallow, "
                        "immutable data explicitly)",
                    )
            elif isinstance(node, ast.Call):
                dotted = ctx.imports.resolve_call_chain(node.func)
                if dotted == "copy.deepcopy":
                    yield ctx.finding(
                        self.id,
                        node,
                        "deepcopy outside controlplane/snapshot.py; use "
                        "snapshot()/fork() so cross-references are rebound "
                        "consistently",
                    )
