"""Rule R4: every simulator event type declares a unique PRIORITY rank.

Events sharing a timestamp dispatch in ``(priority, insertion)`` order; an
event class missing from the ``PRIORITY`` table silently sorts last (rank
99), which *works* until a second unranked type lands at the same instant
and their relative order becomes an accident of scheduling call sites.
This is a project rule: subclasses may be defined in any module, the table
lives in ``sim/events.py``, and coverage is only checkable globally.  It
is written in map/reduce form so the per-file class/table summaries ride
the incremental cache.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from ..context import FileContext
from ..findings import Finding
from ..registry import ProjectRule, register

_ROOT_CLASS = "Event"
_TABLE_NAME = "PRIORITY"


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _key_name(key: ast.expr | None) -> str | None:
    if isinstance(key, ast.Name):
        return key.id
    if isinstance(key, ast.Attribute):
        return key.attr
    return None


def _anchor(ctx: FileContext, node: ast.AST) -> dict[str, object]:
    line = getattr(node, "lineno", 1)
    return {
        "line": line,
        "col": getattr(node, "col_offset", 0),
        "source_line": ctx.source_line(line),
    }


@register
class EventPriorityRule(ProjectRule):
    """R4: Event subclasses must hold a unique rank in a PRIORITY table."""

    id = "R4"
    name = "event-priority"
    rationale = (
        "Same-timestamp dispatch order is part of the simulation's "
        "semantics; an event class without an explicit unique PRIORITY "
        "rank gets an arbitrary tie order that golden tests cannot pin."
    )

    def extract(self, ctx: FileContext) -> dict[str, object] | None:
        classes: list[dict[str, object]] = []
        tables: list[list[dict[str, object]]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                entry = _anchor(ctx, node)
                entry["name"] = node.name
                entry["bases"] = sorted(_base_names(node))
                classes.append(entry)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                if not isinstance(value, ast.Dict):
                    continue
                if not any(
                    isinstance(target, ast.Name) and target.id == _TABLE_NAME
                    for target in targets
                ):
                    continue
                entries: list[dict[str, object]] = []
                for key, rank_node in zip(value.keys, value.values):
                    name = _key_name(key)
                    if name is None:
                        continue
                    entry = _anchor(ctx, rank_node)
                    entry["name"] = name
                    if isinstance(rank_node, ast.Constant) and isinstance(
                        rank_node.value, int
                    ):
                        entry["rank"] = rank_node.value
                    else:
                        entry["rank"] = None  # non-literal rank: reported below
                    entries.append(entry)
                tables.append(entries)
        if not classes and not tables:
            return None
        return {"classes": classes, "tables": tables}

    def reduce(self, summaries: Sequence[tuple[str, object]]) -> Iterator[Finding]:
        classes: list[tuple[str, dict[str, object]]] = []
        bases_of: dict[str, set[str]] = {}
        tables: list[tuple[str, list[dict[str, object]]]] = []
        for path, summary in summaries:
            assert isinstance(summary, dict)
            for entry in summary.get("classes", []):
                classes.append((path, entry))
                bases_of.setdefault(str(entry["name"]), set()).update(
                    str(base) for base in entry["bases"]
                )
            for entries in summary.get("tables", []):
                tables.append((path, entries))

        # Transitive closure: which class names descend from Event?
        event_classes = {_ROOT_CLASS}
        changed = True
        while changed:
            changed = False
            for name, bases in bases_of.items():
                if name not in event_classes and bases & event_classes:
                    event_classes.add(name)
                    changed = True

        ranked: dict[str, int] = {}
        for path, entries in tables:
            seen_ranks: dict[int, str] = {}
            for entry in entries:
                name = str(entry["name"])
                rank = entry["rank"]
                if rank is None:
                    yield self._finding(
                        path,
                        entry,
                        f"PRIORITY rank of {name} must be an integer literal "
                        "(ranks are part of the simulation contract)",
                    )
                    continue
                assert isinstance(rank, int)
                if rank in seen_ranks:
                    yield self._finding(
                        path,
                        entry,
                        f"duplicate PRIORITY rank {rank} for {name} (also held "
                        f"by {seen_ranks[rank]}); same-timestamp order between "
                        "them is undefined",
                    )
                else:
                    seen_ranks[rank] = name
                ranked[name] = rank

        for path, entry in classes:
            name = str(entry["name"])
            if name == _ROOT_CLASS or name not in event_classes:
                continue
            if name not in ranked:
                yield self._finding(
                    path,
                    entry,
                    f"event class {name} declares no PRIORITY rank; add it "
                    "to the PRIORITY table with a unique integer so "
                    "same-timestamp dispatch order is explicit",
                )

    def _finding(self, path: str, anchor: dict[str, object], message: str) -> Finding:
        return Finding(
            rule_id=self.id,
            path=path,
            line=int(anchor["line"]),  # type: ignore[call-overload]
            col=int(anchor["col"]),  # type: ignore[call-overload]
            message=message,
            source_line=str(anchor["source_line"]),
        )
