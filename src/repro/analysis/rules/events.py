"""Rule R4: every simulator event type declares a unique PRIORITY rank.

Events sharing a timestamp dispatch in ``(priority, insertion)`` order; an
event class missing from the ``PRIORITY`` table silently sorts last (rank
99), which *works* until a second unranked type lands at the same instant
and their relative order becomes an accident of scheduling call sites.
This is a project rule: subclasses may be defined in any module, the table
lives in ``sim/events.py``, and coverage is only checkable globally.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import ProjectRule, register

_ROOT_CLASS = "Event"
_TABLE_NAME = "PRIORITY"


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _key_name(key: ast.expr | None) -> str | None:
    if isinstance(key, ast.Name):
        return key.id
    if isinstance(key, ast.Attribute):
        return key.attr
    return None


@register
class EventPriorityRule(ProjectRule):
    """R4: Event subclasses must hold a unique rank in a PRIORITY table."""

    id = "R4"
    name = "event-priority"
    rationale = (
        "Same-timestamp dispatch order is part of the simulation's "
        "semantics; an event class without an explicit unique PRIORITY "
        "rank gets an arbitrary tie order that golden tests cannot pin."
    )

    def check_project(self, contexts: Iterable[FileContext]) -> Iterator[Finding]:
        class_defs: list[tuple[FileContext, ast.ClassDef]] = []
        bases_of: dict[str, set[str]] = {}
        ranked: dict[str, int] = {}
        tables: list[tuple[FileContext, ast.Dict]] = []

        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    class_defs.append((ctx, node))
                    bases_of.setdefault(node.name, set()).update(_base_names(node))
                elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    value = node.value
                    if not isinstance(value, ast.Dict):
                        continue
                    for target in targets:
                        if isinstance(target, ast.Name) and target.id == _TABLE_NAME:
                            tables.append((ctx, value))

        # Transitive closure: which class names descend from Event?
        event_classes = {_ROOT_CLASS}
        changed = True
        while changed:
            changed = False
            for name, bases in bases_of.items():
                if name not in event_classes and bases & event_classes:
                    event_classes.add(name)
                    changed = True

        for ctx, dict_node in tables:
            seen_ranks: dict[int, str] = {}
            for key, value in zip(dict_node.keys, dict_node.values):
                name = _key_name(key)
                if name is None:
                    continue
                if not (isinstance(value, ast.Constant) and isinstance(value.value, int)):
                    yield ctx.finding(
                        self.id,
                        value,
                        f"PRIORITY rank of {name} must be an integer literal "
                        "(ranks are part of the simulation contract)",
                    )
                    continue
                rank = value.value
                if rank in seen_ranks:
                    yield ctx.finding(
                        self.id,
                        value,
                        f"duplicate PRIORITY rank {rank} for {name} (also held "
                        f"by {seen_ranks[rank]}); same-timestamp order between "
                        "them is undefined",
                    )
                else:
                    seen_ranks[rank] = name
                ranked[name] = rank

        for ctx, node in class_defs:
            if node.name == _ROOT_CLASS or node.name not in event_classes:
                continue
            if node.name not in ranked:
                yield ctx.finding(
                    self.id,
                    node,
                    f"event class {node.name} declares no PRIORITY rank; add it "
                    "to the PRIORITY table with a unique integer so "
                    "same-timestamp dispatch order is explicit",
                )
