"""Rule R8: exception hygiene — errors surface, they are not swallowed.

The control plane turns illegal mutations into ``IllegalTransitionError``;
that design only protects the invariants if nobody quietly catches it.
Likewise, a bare ``except:`` (or a no-op ``except Exception:``) converts
any invariant violation — including the analyzer's own runtime cousins,
``SimulationError`` and ``AllocationError`` — into silent state corruption.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

_BROAD = frozenset({"Exception", "BaseException"})
_GUARDED = frozenset({"IllegalTransitionError"})


def _caught_names(handler: ast.ExceptHandler) -> set[str]:
    node = handler.type
    exprs: list[ast.expr] = []
    if node is None:
        return set()
    if isinstance(node, ast.Tuple):
        exprs = list(node.elts)
    else:
        exprs = [node]
    names: set[str] = set()
    for expr in exprs:
        if isinstance(expr, ast.Name):
            names.add(expr.id)
        elif isinstance(expr, ast.Attribute):
            names.add(expr.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register
class ExceptionHygieneRule(Rule):
    """R8: no bare excepts, no swallowed broad or lifecycle exceptions."""

    id = "R8"
    name = "exception-hygiene"
    rationale = (
        "Swallowing broad exceptions converts invariant violations into "
        "silent state corruption; IllegalTransitionError in particular is "
        "the control plane refusing an illegal mutation and must propagate "
        "(or be explicitly waived with a reason)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self.id,
                    node,
                    "bare 'except:' catches everything including "
                    "KeyboardInterrupt; name the exception types",
                )
                continue
            caught = _caught_names(node)
            if caught & _GUARDED and not _reraises(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "IllegalTransitionError swallowed; the control plane "
                    "refused an illegal mutation — let it propagate or "
                    "re-raise with context",
                )
            elif caught & _BROAD and not _reraises(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "broad exception caught without re-raising; narrow the "
                    "type or re-raise — silent failure hides invariant "
                    "violations",
                )
