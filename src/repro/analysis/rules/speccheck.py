"""Rules R12/R13: frozen spec classes must be fully fingerprinted and
never mutated after construction.

The sweep/content-address cache keys every artifact on spec fingerprints
(``SimCell.spec_json``, ``TaskSpec.fingerprint``, ``WorkflowSpec.
fingerprint``, …).  Two silent ways to poison that cache:

* **R12** — a dataclass field added to a spec but not consumed by its
  fingerprint/canonical-JSON encoding: two semantically different specs
  then collide on one cache key and the second run returns the first
  run's results.
* **R13** — mutating a frozen spec after construction via
  ``object.__setattr__``: the spec's fingerprint no longer describes the
  object, so whatever was cached under it is stale.  The only legitimate
  site is ``__post_init__`` (derived-field initialisation before the
  value escapes).

R12 is syntactic and per-class: a class is checked only when it defines
one of the encoding entry points (``fingerprint`` / ``spec_json`` /
``cache_key``); consumption is the closure of ``self.<attr>`` reads
through same-class method calls, and a call that encodes ``self``
generically (``canonical_json(self)``, ``asdict(self)``, ``vars(self)``,
``dataclasses.fields``/``getattr`` reflection) consumes every field.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import scopes
from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

#: Methods whose presence marks a class as cache-key-producing.
ENCODING_METHODS = frozenset({"fingerprint", "spec_json", "cache_key"})
#: Calls that consume every field of ``self`` generically.
_GENERIC_ENCODERS = frozenset(
    {"canonical_json", "asdict", "astuple", "vars", "fields", "getattr"}
)
#: Functions allowed to call ``object.__setattr__`` (construction time).
_SETATTR_OWNERS = frozenset({"__post_init__", "__init__", "__new__", "__setstate__"})


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if keyword.arg == "frozen" and isinstance(keyword.value, ast.Constant):
                return bool(keyword.value.value)
    return False


def _is_classvar(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "ClassVar"
    return isinstance(annotation, ast.Name) and annotation.id == "ClassVar"


def _self_attrs(body: list[ast.stmt]) -> set[str]:
    """Every ``self.<attr>`` read anywhere in a method body."""
    attrs: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                attrs.add(node.attr)
    return attrs


def _encodes_generically(body: list[ast.stmt]) -> bool:
    """True when the body hands ``self`` to a whole-object encoder."""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name not in _GENERIC_ENCODERS:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == "self":
                    return True
                if (  # fields(type(self)) / vars(type(self))
                    isinstance(arg, ast.Call)
                    and isinstance(arg.func, ast.Name)
                    and arg.func.id == "type"
                    and arg.args
                    and isinstance(arg.args[0], ast.Name)
                    and arg.args[0].id == "self"
                ):
                    return True
    return False


@register
class FingerprintCoverageRule(Rule):
    """R12: every field of a fingerprinted spec reaches its encoding."""

    id = "R12"
    name = "fingerprint-coverage"
    rationale = (
        "Spec fingerprints are cache keys: a dataclass field the encoding "
        "skips makes two different specs collide on one key, silently "
        "serving one spec's cached results for the other."
    )
    scope = scopes.SIMULATION

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node)):
                continue
            fields: dict[str, ast.AnnAssign] = {}
            methods: dict[str, ast.FunctionDef] = {}
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not _is_classvar(stmt.annotation)
                ):
                    fields[stmt.target.id] = stmt
                elif isinstance(stmt, ast.FunctionDef):
                    methods[stmt.name] = stmt
            triggers = sorted(ENCODING_METHODS & methods.keys())
            if not triggers or not fields:
                continue
            consumed, generic = self._closure(methods, triggers)
            if generic:
                continue
            for field_name in sorted(fields.keys() - consumed):
                yield ctx.finding(
                    self.id,
                    fields[field_name],
                    f"field '{field_name}' of frozen spec {node.name} is not "
                    f"consumed by its {'/'.join(triggers)} encoding; an "
                    "unfingerprinted field lets two different specs share "
                    "one cache key — encode it or move it off the spec",
                )

    def _closure(
        self, methods: dict[str, ast.FunctionDef], triggers: list[str]
    ) -> tuple[set[str], bool]:
        """(self-attrs reachable from triggers, hit a generic encoder?)."""
        consumed: set[str] = set()
        visited: set[str] = set()
        worklist = list(triggers)
        while worklist:
            name = worklist.pop()
            if name in visited:
                continue
            visited.add(name)
            method = methods[name]
            if _encodes_generically(method.body):
                return consumed, True
            attrs = _self_attrs(method.body)
            consumed |= attrs
            worklist.extend(attr for attr in attrs if attr in methods)
        return consumed, False


@register
class FrozenMutationRule(Rule):
    """R13: no ``object.__setattr__`` on specs outside construction."""

    id = "R13"
    name = "frozen-mutation"
    rationale = (
        "A frozen spec's fingerprint is computed from its construction-time "
        "state; object.__setattr__ after __post_init__ silently invalidates "
        "every cache entry keyed on it. Build a new spec with "
        "dataclasses.replace instead."
    )
    scope = scopes.SIMULATION

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._walk(ctx, ctx.tree.body, owner=None)

    def _walk(
        self, ctx: FileContext, body: list[ast.stmt], owner: str | None
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(ctx, stmt.body, owner=stmt.name)
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._walk(ctx, stmt.body, owner=None)
                continue
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "__setattr__"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "object"
                    and owner not in _SETATTR_OWNERS
                ):
                    where = f"{owner}()" if owner else "module scope"
                    yield ctx.finding(
                        self.id,
                        node,
                        "object.__setattr__ on a frozen instance outside "
                        f"construction (in {where}); the fingerprint no "
                        "longer matches the object — use dataclasses.replace "
                        "to derive a new spec instead",
                    )
