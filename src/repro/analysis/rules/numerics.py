"""Rule R5: no float equality in result-producing code.

Metrics, experiment tables and benchmark gates compare accumulated floats;
``==``/``!=`` against a float literal is exact-bit comparison and breaks
the moment an accumulation order changes — precisely the kind of silent
misclassification the golden pins exist to catch loudly instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import scopes
from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register


def _is_float_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_expr(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


@register
class FloatEqualityRule(Rule):
    """R5: ``==``/``!=`` with float operands in metrics/experiments code."""

    id = "R5"
    name = "float-equality"
    rationale = (
        "Exact float equality in result aggregation flips on any change in "
        "accumulation order; compare with a tolerance (math.isclose) or "
        "restructure around integers/thresholds."
    )
    scope = scopes.NUMERIC_RESULTS

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_expr(left) or _is_float_expr(right):
                    yield ctx.finding(
                        self.id,
                        node,
                        "exact float equality in result-producing code; use "
                        "math.isclose (or an explicit threshold) instead",
                    )
                    break
