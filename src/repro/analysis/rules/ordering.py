"""Rule R6: no iteration over unordered sets in order-sensitive paths.

Python string hashing is salted per process: iterating a ``set`` of job or
node ids visits them in a different order every run unless
``PYTHONHASHSEED`` happens to be pinned.  In scheduler/placement hot paths
that order decides who places first, which ``min()`` tie wins, and in what
order floats accumulate — all things the golden tests pin.  The rule does
lightweight local type inference: names bound to set-producing expressions
within a scope count as sets, so ``types = {…}; min(types, …)`` is caught
two statements apart.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import scopes
from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({"union", "intersection", "difference", "symmetric_difference"})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
#: Builtins whose single-iterable form consumes order.
_ORDER_CONSUMERS = frozenset({"min", "max", "sum", "list", "tuple", "enumerate", "zip"})


def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk *root* without descending into nested function scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return _is_set_expr(func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        # `-`/`|`/`&`/`^` are set-valued only when a side provably is —
        # a bare `a - b` on unknown names stays unflagged (ints!).
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, set_names) or _is_set_expr(node.orelse, set_names)
    return False


def _set_names_of(scope: ast.AST) -> set[str]:
    """Names bound to set-producing expressions inside *scope* (fixpoint)."""
    names: set[str] = set()
    for _ in range(2):  # two passes resolve one level of chaining
        for node in _walk_scope(scope):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if (
                isinstance(target, ast.Name)
                and value is not None
                and _is_set_expr(value, names)
            ):
                names.add(target.id)
    return names


@register
class UnorderedIterationRule(Rule):
    """R6: set iteration without an explicit order in hot paths."""

    id = "R6"
    name = "unordered-iteration"
    rationale = (
        "Set iteration order is salted per process; in scheduler/placement "
        "paths it decides placements, min/max tie winners and float "
        "accumulation order. Wrap the set in sorted(...) with an explicit "
        "key before iterating."
    )
    scope = scopes.ORDER_SENSITIVE

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        functions = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in [ctx.tree, *functions]:
            set_names = _set_names_of(scope)
            for node in _walk_scope(scope):
                for iterable, how in self._iteration_sites(node):
                    if _is_set_expr(iterable, set_names):
                        yield ctx.finding(
                            self.id,
                            iterable,
                            f"{how} over an unordered set in an order-sensitive "
                            "path; iterate sorted(...) with an explicit key",
                        )

    @staticmethod
    def _iteration_sites(node: ast.AST) -> Iterator[tuple[ast.expr, str]]:
        if isinstance(node, ast.For):
            yield node.iter, "iteration"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                yield generator.iter, "comprehension"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if name not in _ORDER_CONSUMERS:
                return
            if name in ("min", "max") and len(node.args) != 1:
                return  # scalar form min(a, b) compares values, not order
            for arg in node.args:
                yield arg, f"{name}()"
