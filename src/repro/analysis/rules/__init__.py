"""simlint rule modules.

Importing this package registers every rule with
:mod:`repro.analysis.registry`.  Add new rule modules to the import list
below; each rule documents its id, scope and rationale on the class.
"""

from __future__ import annotations

from . import (  # noqa: F401  — imported for registration side effects
    determinism,
    encapsulation,
    events,
    hygiene,
    lifecycle,
    numerics,
    ordering,
    speccheck,
    taint,
)
