"""Intraprocedural determinism-taint dataflow.

The engine behind rules R9/R10.  It walks one function (or the module top
level) in statement order and tracks where *nondeterministic iteration
order* can flow.  Three taint kinds are distinguished:

* ``UNORDERED`` — a value that is an unordered collection (``set`` /
  ``frozenset`` literals and constructors, ``os.environ`` views,
  ``os.listdir`` / ``glob`` results, ``concurrent.futures.as_completed``
  streams).  Holding one is harmless: membership tests, ``len()``,
  ``sorted()`` are all deterministic.
* ``ORDERED`` — a value whose element *order* was materialised from an
  UNORDERED source (``list(s)``, a comprehension over ``s``, appends
  inside a ``for`` over ``s``, ``"".join(s)``, ``hash(tuple(s))``).  The
  arbitrary order is now baked into an ordered value that will reproduce
  differently across processes; it must never reach a result sink.
* ``IDKEYS`` — a container keyed by ``id(...)``.  Iteration is
  insertion-ordered (fine), but *sorting* it orders by memory address —
  ``sorted()`` over it is the violation rather than the sanitiser.

Each taint carries its full derivation path (source line → assignments →
materialisation), so a finding can show the whole source→sink chain.

The walk is deliberately simple: statements are processed in source
order, branches sequentially (a taint acquired in either branch
survives), nested functions are analysed independently, and calls are
never followed — the pass is intraprocedural by design.  Where the
engine cannot tell, it stays silent: findings must be actionable.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from .context import FileContext


class TaintKind(enum.Enum):
    UNORDERED = "unordered"  # unordered collection; order not yet observed
    ORDERED = "ordered"  # arbitrary order materialised into a value
    IDKEYS = "idkeys"  # container keyed by id(); sorting it = addresses


@dataclass(frozen=True)
class TaintStep:
    """One hop of a taint derivation: what happened at which line."""

    line: int
    what: str

    def render(self) -> str:
        return f"{self.what} (line {self.line})"


@dataclass(frozen=True)
class Taint:
    """A tainted value: its kind plus the full derivation path."""

    kind: TaintKind
    steps: tuple[TaintStep, ...]

    def then(self, line: int, what: str, kind: TaintKind | None = None) -> "Taint":
        return Taint(
            kind=kind if kind is not None else self.kind,
            steps=self.steps + (TaintStep(line, what),),
        )

    def chain(self) -> str:
        """The human-facing source→sink path, e.g. ``set() (line 3) -> …``."""
        return " -> ".join(step.render() for step in self.steps)


@dataclass(frozen=True)
class TaintReach:
    """A tainted value arriving somewhere a rule cares about.

    ``sink`` encodes how it arrived: ``call:<name>`` (tainted argument to
    a sink call), ``loop-call:<name>`` (sink call issued once per
    iteration of a loop over unordered data), ``return`` (arbitrary order
    escapes the function), ``accumulation`` (float accumulation in
    arbitrary order — rule R10), ``sort-key`` (sort key reads a tainted
    name), or ``idkeys-sort`` (sorting by memory address).
    """

    node: ast.AST  # anchor for the finding
    taint: Taint
    sink: str


#: Default result sinks: calls whose arguments become results, cache keys,
#: event order, or RNG streams.  Matched against the resolved dotted name
#: and its bare tail.
DEFAULT_SINKS = frozenset(
    {
        # fingerprints / cache keys / serialised results
        "canonical_json",
        "spec_json",
        "fingerprint",
        "sha256",
        "md5",
        "dumps",
        # metrics rows
        "as_row",
        "add_row",
        "record",
        "observe",
        # event/queue order
        "heappush",
        "schedule",
        "enqueue",
        "push",
        # RNG seeding
        "default_rng",
        "SeedSequence",
        "seed",
        "spawn",
    }
)

#: Call names (bare) that *produce* unordered collections.
_UNORDERED_CALLS = frozenset({"set", "frozenset"})
#: Dotted call chains producing filesystem/scheduling-ordered data.
_FS_ORDER_CALLS = frozenset(
    {
        "os.listdir",
        "os.scandir",
        "glob.glob",
        "glob.iglob",
        "concurrent.futures.as_completed",
        # wait() returns (done, not_done) *sets*; completion order leaks
        # into whatever a loop over them builds.
        "concurrent.futures.wait",
    }
)
#: Attribute-call tails with the same property (method form).
_FS_ORDER_METHODS = frozenset({"iterdir", "as_completed", "imap_unordered"})
#: Set methods whose result is still an unordered set.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
#: Dict/set view methods: carry the receiver's (un)orderedness.
_VIEW_METHODS = frozenset({"keys", "values", "items"})
#: Calls that consume a collection into an order-free scalar/bool.
_SANITIZERS = frozenset({"len", "any", "all", "bool", "min", "max", "sum", "fsum"})
#: Calls that materialise iteration order into an ordered value.
_MATERIALIZERS = frozenset({"list", "tuple", "reversed", "enumerate", "zip"})
#: Calls that propagate order-dependence into a scalar (hash of a tuple
#: built from a set differs run to run).
_PROPAGATORS = frozenset({"hash", "str", "repr"})
#: Accumulating calls checked by R10 (order-dependent float folds).
_ACCUMULATORS = frozenset({"sum", "fsum"})


def _call_name(ctx: FileContext, node: ast.Call) -> str | None:
    """Resolved dotted name of a call, falling back to the bare attr/name."""
    dotted = ctx.imports.resolve_call_chain(node.func)
    if dotted is not None:
        return dotted
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_environ(ctx: FileContext, node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "environ":
        return True
    if isinstance(node, ast.Name):
        return ctx.imports.from_imports.get(node.id) == "os.environ"
    return False


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _is_float_literalish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


class FunctionTaintAnalysis:
    """One flow-sensitive pass over one function body."""

    def __init__(
        self,
        ctx: FileContext,
        on_reach: Callable[[TaintReach], None],
        sinks: frozenset[str] = DEFAULT_SINKS,
    ) -> None:
        self.ctx = ctx
        self.on_reach = on_reach
        self.sinks = sinks
        self.env: dict[str, Taint] = {}
        #: Names with float-accumulator evidence (``acc = 0.0``).
        self.float_names: set[str] = set()
        #: Stack of taints of enclosing ``for`` loops over tainted iterables.
        self.loop_taints: list[Taint] = []

    # -- expression evaluation ------------------------------------------------

    def taint_of(self, node: ast.expr) -> Taint | None:
        """Taint of an expression value, or None when clean/unknown."""
        line = getattr(node, "lineno", 0)
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, (ast.Set, ast.SetComp)):
            what = "set literal" if isinstance(node, ast.Set) else "set comprehension"
            return Taint(TaintKind.UNORDERED, (TaintStep(line, what),))
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            return self._comprehension_taint(node)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            for side in (node.left, node.right):
                side_taint = self.taint_of(side)
                if side_taint is not None and side_taint.kind is TaintKind.UNORDERED:
                    return side_taint.then(line, "combined by a set operator")
            return None
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body) or self.taint_of(node.orelse)
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.Attribute) and _is_environ(self.ctx, node):
            return Taint(TaintKind.UNORDERED, (TaintStep(line, "os.environ"),))
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if not isinstance(value, ast.FormattedValue):
                    continue
                part_taint = self.taint_of(value.value)
                if part_taint is not None and part_taint.kind is TaintKind.ORDERED:
                    return part_taint.then(line, "interpolated into an f-string")
        return None

    def _comprehension_taint(self, node: ast.expr) -> Taint | None:
        """A comprehension over a tainted iterable materialises its order."""
        assert isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp))
        for generator in node.generators:
            iter_taint = self.taint_of(generator.iter)
            if iter_taint is not None and iter_taint.kind in (
                TaintKind.UNORDERED,
                TaintKind.ORDERED,
            ):
                shape = {
                    ast.ListComp: "list comprehension",
                    ast.GeneratorExp: "generator expression",
                    ast.DictComp: "dict comprehension",
                }[type(node)]
                return iter_taint.then(
                    node.lineno,
                    f"order materialised by a {shape} over it",
                    TaintKind.ORDERED,
                )
        return None

    def _call_taint(self, node: ast.Call) -> Taint | None:
        name = _call_name(self.ctx, node)
        line = node.lineno
        if name is None:
            return None
        bare = name.split(".")[-1]
        # Sources -------------------------------------------------------------
        if name in _FS_ORDER_CALLS or (
            isinstance(node.func, ast.Attribute) and bare in _FS_ORDER_METHODS
        ):
            return Taint(TaintKind.UNORDERED, (TaintStep(line, f"{bare}()"),))
        if bare in _UNORDERED_CALLS and isinstance(node.func, ast.Name):
            # set()/frozenset() of anything is unordered, whatever went in.
            return Taint(TaintKind.UNORDERED, (TaintStep(line, f"{bare}()"),))
        # Receiver-propagating methods ---------------------------------------
        if isinstance(node.func, ast.Attribute):
            receiver = self.taint_of(node.func.value)
            if receiver is not None:
                if bare in _SET_METHODS and receiver.kind is TaintKind.UNORDERED:
                    return receiver.then(line, f".{bare}() keeps it unordered")
                if bare in _VIEW_METHODS:
                    # Views of unordered data stay unordered; views of a
                    # dict *filled* in arbitrary order iterate in that
                    # arbitrary insertion order, so ORDERED carries too.
                    return receiver.then(line, f".{bare}() view", receiver.kind)
            if bare == "join" and node.args:
                arg_taint = self.taint_of(node.args[0])
                if arg_taint is not None and arg_taint.kind in (
                    TaintKind.UNORDERED,
                    TaintKind.ORDERED,
                ):
                    return arg_taint.then(
                        line, "order materialised by str.join", TaintKind.ORDERED
                    )
        # Sanitizers, materialisers, propagators ------------------------------
        if bare == "sorted":
            return None  # sorted() is the sanitizer (IDKEYS handled at scan)
        if bare in _SANITIZERS:
            return None  # order-free scalar result (sum itself is R10's job)
        if bare in _MATERIALIZERS:
            for arg in node.args:
                arg_taint = self.taint_of(arg)
                if arg_taint is not None and arg_taint.kind in (
                    TaintKind.UNORDERED,
                    TaintKind.ORDERED,
                ):
                    return arg_taint.then(
                        line, f"order materialised by {bare}()", TaintKind.ORDERED
                    )
            return None
        if bare in _PROPAGATORS:
            for arg in node.args:
                arg_taint = self.taint_of(arg)
                if arg_taint is not None and arg_taint.kind in (
                    TaintKind.UNORDERED,
                    TaintKind.ORDERED,
                ):
                    return arg_taint.then(
                        line, f"order-dependent {bare}()", TaintKind.ORDERED
                    )
            return None
        return None

    # -- statement walk -------------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self.visit(statement)

    def visit(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analysed independently
        if isinstance(node, ast.Assign):
            self._assign(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._assign([node.target], node.value)
        elif isinstance(node, ast.AugAssign):
            self._aug_assign(node)
        elif isinstance(node, ast.Return) and node.value is not None:
            self._scan_calls(node.value)
            taint = self.taint_of(node.value)
            if taint is not None and taint.kind is TaintKind.ORDERED:
                self.on_reach(TaintReach(node, taint, "return"))
        elif isinstance(node, ast.For):
            self._for_loop(node)
        elif isinstance(node, ast.While):
            self._scan_calls(node.test)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.If):
            self._scan_calls(node.test)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.With):
            for item in node.items:
                self._scan_calls(item.context_expr)
            self.run(node.body)
        elif isinstance(node, ast.Try):
            self.run(node.body)
            for handler in node.handlers:
                self.run(handler.body)
            self.run(node.orelse)
            self.run(node.finalbody)
        elif isinstance(node, ast.Expr):
            self._scan_calls(node.value)
        elif isinstance(node, ast.Raise):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._scan_calls(child)
            if isinstance(node.exc, ast.Call):
                # Exception text built from arbitrary iteration order makes
                # failure reports differ run to run — a debugging trap.
                for arg in node.exc.args:
                    taint = self.taint_of(arg)
                    if taint is not None and taint.kind is TaintKind.ORDERED:
                        self.on_reach(
                            TaintReach(
                                node.exc,
                                taint.then(node.lineno, "raised in an exception"),
                                "raise",
                            )
                        )
                        break
        elif isinstance(node, ast.Assert):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._scan_calls(child)

    def _assign(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        self._scan_calls(value)
        taint = self.taint_of(value)
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and isinstance(target.slice, ast.Call)
                and isinstance(target.slice.func, ast.Name)
                and target.slice.func.id == "id"
            ):
                # d[id(x)] = … — the container is now keyed by addresses.
                self.env[target.value.id] = Taint(
                    TaintKind.IDKEYS,
                    (TaintStep(target.lineno, "container keyed by id()"),),
                )
                continue
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and self.loop_taints
            ):
                # Subscript stores inside a loop over unordered data bake
                # the loop's arbitrary order into the container.
                self.env[target.value.id] = self.loop_taints[-1].then(
                    target.lineno,
                    f"'{target.value.id}' filled in loop order",
                    TaintKind.ORDERED,
                )
                continue
            for name in _target_names(target):
                if taint is not None:
                    self.env[name] = taint.then(value.lineno, f"assigned to '{name}'")
                else:
                    self.env.pop(name, None)
                    if _is_float_literalish(value):
                        self.float_names.add(name)

    def _aug_assign(self, node: ast.AugAssign) -> None:
        self._scan_calls(node.value)
        if not isinstance(node.target, ast.Name):
            return
        name = node.target.id
        if isinstance(node.op, ast.Add) and self.loop_taints and name in self.float_names:
            taint = self.loop_taints[-1].then(
                node.lineno, f"float accumulation into '{name}' in loop order"
            )
            self.on_reach(TaintReach(node, taint, "accumulation"))
        value_taint = self.taint_of(node.value)
        if value_taint is not None:
            self.env[name] = value_taint.then(node.lineno, f"merged into '{name}'")

    def _for_loop(self, node: ast.For) -> None:
        self._scan_calls(node.iter)
        iter_taint = self.taint_of(node.iter)
        pushed = False
        if iter_taint is not None and iter_taint.kind in (
            TaintKind.UNORDERED,
            TaintKind.ORDERED,
        ):
            self.loop_taints.append(iter_taint.then(node.lineno, "iterated by a for loop"))
            pushed = True
        try:
            self.run(node.body)
            self.run(node.orelse)
        finally:
            if pushed:
                self.loop_taints.pop()

    # -- call scanning: sinks, accumulators, container mutations --------------

    def _is_sink(self, name: str) -> bool:
        return name in self.sinks or name.split(".")[-1] in self.sinks

    def _scan_calls(self, node: ast.expr) -> None:
        """Check embedded calls for sink reaches and taint side effects."""
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            name = _call_name(self.ctx, call)
            if name is None:
                continue
            bare = name.split(".")[-1]
            if bare in ("append", "extend") and isinstance(call.func, ast.Attribute):
                # list.append/extend inside a loop over unordered data bakes
                # the arbitrary iteration order into the list.
                if isinstance(call.func.value, ast.Name) and self.loop_taints:
                    target = call.func.value.id
                    self.env[target] = self.loop_taints[-1].then(
                        call.lineno,
                        f"'{target}'.{bare}() in loop order",
                        TaintKind.ORDERED,
                    )
            if bare in ("sorted", "min", "max") and call.args:
                arg_taint = self.taint_of(call.args[0])
                if arg_taint is not None and arg_taint.kind is TaintKind.IDKEYS:
                    self.on_reach(
                        TaintReach(
                            call,
                            arg_taint.then(call.lineno, f"{bare}() over id() keys"),
                            "idkeys-sort",
                        )
                    )
            if bare in ("sorted", "sort"):
                self._check_sort_key(call)
            if bare in _ACCUMULATORS:
                for arg in call.args:
                    arg_taint = self.taint_of(arg)
                    if arg_taint is not None and arg_taint.kind in (
                        TaintKind.UNORDERED,
                        TaintKind.ORDERED,
                    ):
                        self.on_reach(
                            TaintReach(
                                call,
                                arg_taint.then(call.lineno, f"accumulated by {bare}()"),
                                "accumulation",
                            )
                        )
            if self._is_sink(name):
                self._check_sink_call(call, name)

    def _check_sort_key(self, call: ast.Call) -> None:
        """A sort key reading an ORDERED-tainted name makes the sort racy."""
        for keyword in call.keywords:
            if keyword.arg != "key" or not isinstance(keyword.value, ast.Lambda):
                continue
            for sub in ast.walk(keyword.value.body):
                if isinstance(sub, ast.Name) and sub.id in self.env:
                    taint = self.env[sub.id]
                    if taint.kind is TaintKind.ORDERED:
                        self.on_reach(
                            TaintReach(
                                call,
                                taint.then(call.lineno, "read by a sort key"),
                                "sort-key",
                            )
                        )
                        return

    def _check_sink_call(self, call: ast.Call, name: str) -> None:
        bare = name.split(".")[-1]
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        for arg in arguments:
            taint = self.taint_of(arg)
            if taint is not None and taint.kind is TaintKind.ORDERED:
                self.on_reach(
                    TaintReach(
                        call,
                        taint.then(call.lineno, f"reaches sink {bare}()"),
                        f"call:{bare}",
                    )
                )
                return
        if self.loop_taints:
            self.on_reach(
                TaintReach(
                    call,
                    self.loop_taints[-1].then(
                        call.lineno, f"sink {bare}() called once per iteration"
                    ),
                    f"loop-call:{bare}",
                )
            )


def iter_function_scopes(ctx: FileContext) -> Iterator[tuple[str, Sequence[ast.stmt]]]:
    """Every analysis scope of a file: the module body plus each function."""
    yield "<module>", ctx.tree.body
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node.body


def analyze_taint(
    ctx: FileContext, sinks: frozenset[str] = DEFAULT_SINKS
) -> list[TaintReach]:
    """Run the taint pass over every scope of *ctx*; returns every reach."""
    reaches: list[TaintReach] = []
    for _name, body in iter_function_scopes(ctx):
        FunctionTaintAnalysis(ctx, reaches.append, sinks).run(body)
    reaches.sort(
        key=lambda r: (getattr(r.node, "lineno", 0), getattr(r.node, "col_offset", 0))
    )
    return reaches
