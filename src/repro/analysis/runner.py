"""simlint driver: collect files, run rules, apply suppressions + baseline.

The runner is the only component that touches the filesystem; rules see
:class:`~repro.analysis.context.FileContext` objects, so tests (and the
``tcloud lint`` verb) can analyze in-memory sources under virtual paths.
File order, finding order and report text are all deterministically sorted
— the analyzer is held to the same reproducibility bar it enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import Baseline
from .context import FileContext
from .findings import Finding
from .registry import BaseRule, ProjectRule, Rule, all_rules

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})
#: Path fragments excluded from analysis (intentional-violation fixtures).
_SKIP_FRAGMENTS = ("tests/data/simlint",)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand *paths* to a sorted, de-duplicated list of ``.py`` files."""
    collected: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            collected.add(path.resolve())
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"simlint: no such file or directory: {path}")
        for candidate in path.rglob("*.py"):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS:
                continue
            posix = candidate.as_posix()
            if any(fragment in posix for fragment in _SKIP_FRAGMENTS):
                continue
            collected.add(candidate.resolve())
    return sorted(collected)


def _display_path(path: Path) -> str:
    """Posix path relative to the working directory when possible."""
    try:
        return path.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class AnalysisReport:
    """Outcome of one analyzer run, before baseline partitioning."""

    findings: list[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    rules_run: tuple[str, ...] = ()

    def partition(self, baseline: Baseline | None) -> tuple[list[Finding], list[Finding]]:
        if baseline is None:
            return list(self.findings), []
        return baseline.split(self.findings)


def analyze_contexts(
    contexts: Sequence[FileContext], rules: Iterable[BaseRule] | None = None
) -> AnalysisReport:
    """Run every rule over already-built contexts."""
    active = tuple(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for ctx in contexts:
        findings.extend(ctx.suppressions.errors)
    for rule in active:
        if isinstance(rule, Rule):
            for ctx in contexts:
                if rule.applies_to(ctx):
                    findings.extend(rule.check(ctx))
        elif isinstance(rule, ProjectRule):
            scoped = [ctx for ctx in contexts if rule.applies_to(ctx)]
            findings.extend(rule.check_project(scoped))
    kept = [
        finding
        for finding in findings
        if finding.rule_id == "S0"
        or not _suppressed(contexts, finding)
    ]
    kept.sort(key=lambda f: f.sort_key)
    return AnalysisReport(
        findings=kept,
        files_analyzed=len(contexts),
        rules_run=tuple(rule.id for rule in active),
    )


def _suppressed(contexts: Sequence[FileContext], finding: Finding) -> bool:
    for ctx in contexts:
        if ctx.path == finding.path:
            return ctx.suppressions.is_suppressed(finding.rule_id, finding.line)
    return False


def analyze_source(source: str, path: str) -> list[Finding]:
    """Analyze one in-memory source under a virtual *path* (test helper)."""
    return analyze_contexts([FileContext.from_source(source, path)]).findings


def analyze_paths(paths: Sequence[str | Path]) -> AnalysisReport:
    """Analyze every Python file reachable from *paths*."""
    contexts: list[FileContext] = []
    parse_errors: list[Finding] = []
    for file_path in iter_python_files(paths):
        display = _display_path(file_path)
        source = file_path.read_text(encoding="utf-8")
        try:
            contexts.append(FileContext.from_source(source, display))
        except SyntaxError as exc:
            parse_errors.append(
                Finding(
                    rule_id="P0",
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    report = analyze_contexts(contexts)
    report.findings = sorted(
        report.findings + parse_errors, key=lambda f: f.sort_key
    )
    report.files_analyzed += len(parse_errors)
    return report
