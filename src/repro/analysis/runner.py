"""simlint driver: collect files, run rules, apply suppressions + baseline.

The runner is the only component that touches the filesystem; rules see
:class:`~repro.analysis.context.FileContext` objects, so tests (and the
``tcloud lint`` verb) can analyze in-memory sources under virtual paths.
File order, finding order and report text are all deterministically sorted
— the analyzer is held to the same reproducibility bar it enforces.

Two execution paths share one per-file phase:

* :func:`analyze_contexts` — in-process, uncached; what tests and
  :func:`analyze_source` use;
* :func:`run_lint` — the incremental path: per-file work (rule checks,
  suppression parsing, project-rule ``extract`` summaries) is cached
  on-disk keyed by file content + engine fingerprint
  (:mod:`repro.analysis.cache`), misses optionally fan out over a spawn
  process pool, and project rules re-``reduce`` from summaries every
  run.  Findings are byte-identical across cold/warm runs and any
  ``--jobs`` value: the merge sorts by path before reducing and by
  ``sort_key`` before reporting, so scheduling order never shows.
"""

from __future__ import annotations

import subprocess
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import Baseline
from .cache import FileRecord, LintCache, engine_fingerprint, file_key
from .context import FileContext
from .findings import Finding
from .registry import BaseRule, ProjectRule, Rule, all_rules
from .suppressions import SuppressionMap

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})
#: Path fragments excluded from analysis (intentional-violation fixtures).
_SKIP_FRAGMENTS = ("tests/data/simlint",)
#: Rule ids never subject to inline suppression (the diagnostics that
#: report broken suppressions/files must not be suppressible themselves).
_UNSUPPRESSABLE = frozenset({"S0", "P0"})

_EMPTY_SUPPRESSIONS = SuppressionMap()


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand *paths* to a sorted, de-duplicated list of ``.py`` files."""
    collected: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            collected.add(path.resolve())
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"simlint: no such file or directory: {path}")
        for candidate in path.rglob("*.py"):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS:
                continue
            posix = candidate.as_posix()
            if any(fragment in posix for fragment in _SKIP_FRAGMENTS):
                continue
            collected.add(candidate.resolve())
    return sorted(collected)


def git_changed_files(paths: Sequence[str | Path]) -> list[Path]:
    """Analyzable ``.py`` files changed vs HEAD (tracked diff + untracked).

    The fast pre-commit subset: project rules only see the changed files,
    so cross-file checks (R4/R11) are authoritative only on full runs.
    """
    changed: set[str] = set()
    for command in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        result = subprocess.run(
            command, capture_output=True, text=True, check=True
        )
        changed.update(line.strip() for line in result.stdout.splitlines() if line.strip())
    roots = [Path(raw).resolve() for raw in paths]
    selected: set[Path] = set()
    for name in changed:
        candidate = Path(name)
        if candidate.suffix != ".py" or not candidate.is_file():
            continue
        posix = candidate.as_posix()
        if any(fragment in posix for fragment in _SKIP_FRAGMENTS):
            continue
        if set(candidate.parts) & _SKIP_DIRS:
            continue
        resolved = candidate.resolve()
        if any(root == resolved or root in resolved.parents for root in roots):
            selected.add(resolved)
    return sorted(selected)


def _display_path(path: Path) -> str:
    """Posix path relative to the working directory when possible."""
    try:
        return path.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class LintStats:
    """``--stats`` payload: cache behavior plus per-rule wall time."""

    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Seconds spent in per-file checks / extracts, by rule id (misses only).
    check_seconds: dict[str, float] = field(default_factory=dict)
    #: Seconds spent in project-rule reduce steps, by rule id.
    reduce_seconds: dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def absorb_checks(self, timings: dict[str, float]) -> None:
        for rule_id, seconds in timings.items():
            self.check_seconds[rule_id] = self.check_seconds.get(rule_id, 0.0) + seconds


@dataclass
class AnalysisReport:
    """Outcome of one analyzer run, before baseline partitioning."""

    findings: list[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    rules_run: tuple[str, ...] = ()
    stats: LintStats = field(default_factory=LintStats)

    def partition(self, baseline: Baseline | None) -> tuple[list[Finding], list[Finding]]:
        if baseline is None:
            return list(self.findings), []
        return baseline.split(self.findings)


# -- the shared per-file phase -------------------------------------------------


def compute_file_record(
    ctx: FileContext, rules: Sequence[BaseRule]
) -> tuple[FileRecord, dict[str, float]]:
    """Run every per-file check and project extract over one context."""
    findings: list[Finding] = list(ctx.suppressions.errors)
    summaries: dict[str, object] = {}
    timings: dict[str, float] = {}
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        started = time.perf_counter()
        if isinstance(rule, Rule):
            findings.extend(rule.check(ctx))
        elif isinstance(rule, ProjectRule):
            summary = rule.extract(ctx)
            if summary is not None:
                summaries[rule.id] = summary
        timings[rule.id] = timings.get(rule.id, 0.0) + time.perf_counter() - started
    return (
        FileRecord(
            path=ctx.path,
            findings=findings,
            suppressions=ctx.suppressions,
            summaries=summaries,
        ),
        timings,
    )


def _parse_error_record(display: str, exc: SyntaxError) -> FileRecord:
    return FileRecord(
        path=display,
        findings=[
            Finding(
                rule_id="P0",
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        ],
    )


def _analyze_bytes(
    data: bytes, display: str, rules: Sequence[BaseRule]
) -> tuple[FileRecord, dict[str, float]]:
    try:
        ctx = FileContext.from_source(data.decode("utf-8"), display)
    except SyntaxError as exc:
        return _parse_error_record(display, exc), {}
    return compute_file_record(ctx, rules)


def _worker_analyze(display: str, data: bytes) -> dict[str, object]:
    """Process-pool entry point; returns plain data only (picklable)."""
    record, timings = _analyze_bytes(data, display, all_rules())
    return {"record": record.as_dict(), "timings": timings}


# -- merge ---------------------------------------------------------------------


def _merge_records(
    records: Sequence[FileRecord],
    rules: Sequence[BaseRule],
    stats: LintStats,
) -> list[Finding]:
    """Combine per-file records into the final sorted finding list."""
    ordered = sorted(records, key=lambda record: record.path)
    suppressions_of = {record.path: record.suppressions for record in ordered}
    findings: list[Finding] = []
    for record in ordered:
        findings.extend(record.findings)
    for rule in rules:
        if not isinstance(rule, ProjectRule):
            continue
        pairs = sorted(
            (record.path, record.summaries[rule.id])
            for record in ordered
            if rule.id in record.summaries
        )
        started = time.perf_counter()
        findings.extend(rule.reduce(pairs))
        stats.reduce_seconds[rule.id] = (
            stats.reduce_seconds.get(rule.id, 0.0) + time.perf_counter() - started
        )
    kept = [
        finding
        for finding in findings
        if finding.rule_id in _UNSUPPRESSABLE
        or not suppressions_of.get(finding.path, _EMPTY_SUPPRESSIONS).is_suppressed(
            finding.rule_id, finding.line
        )
    ]
    kept.sort(key=lambda finding: finding.sort_key)
    return kept


# -- in-process path (tests, analyze_source) -----------------------------------


def analyze_contexts(
    contexts: Sequence[FileContext], rules: Iterable[BaseRule] | None = None
) -> AnalysisReport:
    """Run every rule over already-built contexts (uncached)."""
    active = tuple(rules) if rules is not None else all_rules()
    stats = LintStats(files=len(contexts), cache_misses=len(contexts))
    records = []
    for ctx in contexts:
        record, timings = compute_file_record(ctx, active)
        records.append(record)
        stats.absorb_checks(timings)
    return AnalysisReport(
        findings=_merge_records(records, active, stats),
        files_analyzed=len(contexts),
        rules_run=tuple(rule.id for rule in active),
        stats=stats,
    )


def analyze_source(source: str, path: str) -> list[Finding]:
    """Analyze one in-memory source under a virtual *path* (test helper)."""
    return analyze_contexts([FileContext.from_source(source, path)]).findings


# -- cached / parallel path ----------------------------------------------------


def run_lint(
    paths: Sequence[str | Path],
    *,
    jobs: int = 1,
    cache: LintCache | None = None,
    files: Sequence[Path] | None = None,
) -> AnalysisReport:
    """The incremental analyzer: cache lookups, pooled misses, one merge.

    ``files`` overrides discovery (the ``--changed`` subset); otherwise
    every analyzable file under *paths* is considered, so cross-file
    rules see the whole project.
    """
    started = time.perf_counter()
    rules = all_rules()
    targets = list(files) if files is not None else iter_python_files(paths)
    stats = LintStats(files=len(targets))
    engine = engine_fingerprint() if cache is not None else ""

    records: dict[str, FileRecord] = {}
    misses: list[tuple[str, str, bytes]] = []  # (display, key, data)
    for target in targets:
        display = _display_path(target)
        data = target.read_bytes()
        if cache is None:
            misses.append((display, "", data))
            continue
        key = file_key(display, data, engine)
        cached = cache.get(key)
        if cached is not None and cached.path == display:
            records[display] = cached
        else:
            misses.append((display, key, data))
    if cache is not None:
        stats.cache_hits = len(records)
    stats.cache_misses = len(misses)

    if misses and jobs > 1 and len(misses) > 1:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(misses)), mp_context=get_context("spawn")
        ) as pool:
            futures = {
                display: pool.submit(_worker_analyze, display, data)
                for display, _key, data in misses
            }
            fresh = {
                display: futures[display].result() for display, _key, _data in misses
            }
        for display, key, _data in misses:
            payload = fresh[display]
            record_raw = payload["record"]
            timings = payload["timings"]
            assert isinstance(record_raw, dict) and isinstance(timings, dict)
            record = FileRecord.from_dict(record_raw)
            records[display] = record
            stats.absorb_checks(timings)
            if cache is not None:
                cache.put(key, record)
    else:
        for display, key, data in misses:
            record, timings = _analyze_bytes(data, display, rules)
            records[display] = record
            stats.absorb_checks(timings)
            if cache is not None:
                cache.put(key, record)

    findings = _merge_records(list(records.values()), rules, stats)
    stats.wall_seconds = time.perf_counter() - started
    return AnalysisReport(
        findings=findings,
        files_analyzed=len(targets),
        rules_run=tuple(rule.id for rule in rules),
        stats=stats,
    )


def analyze_paths(paths: Sequence[str | Path]) -> AnalysisReport:
    """Analyze every Python file reachable from *paths* (uncached)."""
    return run_lint(paths, jobs=1, cache=None)
