"""Path scopes shared by the simlint rules.

Fragments are matched as substrings of posix-style paths, so the same
scopes work for the real tree (``src/repro/sim/engine.py``), for test
fixtures analyzed under virtual paths, and for out-of-tree callers.
"""

from __future__ import annotations

#: Code that runs *inside* a simulation: everything here must be
#: bit-reproducible from ``SimConfig.seed`` alone.
SIMULATION = (
    "repro/sim/",
    "repro/sched/",
    "repro/serving/",
    "repro/workload/",
    "repro/controlplane/",
    "repro/cluster/",
    "repro/execlayer/",
    "repro/sweep/",
    "repro/federation/",
    # Workflow fingerprints and compile plans feed sweep cache keys, so
    # schema validation and compilation must be bit-reproducible too.
    "repro/schema/",
    "repro/compiler/",
)

#: Scheduler/placement hot paths where iteration order decides outcomes.
ORDER_SENSITIVE = (
    "repro/sim/",
    "repro/sched/",
    "repro/serving/",
    "repro/controlplane/",
    "repro/cluster/",
    "repro/federation/",
)

#: Result-producing code where float equality silently misclassifies.
NUMERIC_RESULTS = (
    "repro/sim/metrics",
    "repro/serving/latency",
    "repro/experiments/",
    "repro/ops/",
    "benchmarks/",
)

#: The one module allowed to deep-copy live simulations.
SNAPSHOT_MODULE = ("controlplane/snapshot.py",)

#: The control plane plus the job model's own transition methods — the
#: only legitimate writers of job lifecycle state.
LIFECYCLE_OWNERS = (
    "repro/controlplane/",
    "workload/job.py",
)
