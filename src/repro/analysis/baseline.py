"""Grandfathered-findings baseline.

A committed JSON baseline lets the CI gate demand *zero new findings*
without requiring the whole tree to be fixed in the same PR that adds a
rule.  Entries key on ``(rule, path, stripped source line)`` with a
multiplicity count — line numbers are deliberately absent so unrelated
edits above a grandfathered finding do not invalidate it.  Fixing a
baselined finding and regenerating (``scripts/simlint_baseline.py``)
shrinks the file; the gate never lets it grow.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

_VERSION = 1


@dataclass
class Baseline:
    """Multiset of grandfathered findings."""

    counts: Counter[tuple[str, str, str]] = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(counts=Counter(f.baseline_key for f in findings))

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported simlint baseline version {data.get('version')!r} "
                f"in {path} (expected {_VERSION})"
            )
        counts: Counter[tuple[str, str, str]] = Counter()
        for entry in data.get("findings", []):
            key = (entry["rule"], entry["path"], entry["source_line"])
            counts[key] += int(entry.get("count", 1))
        return cls(counts=counts)

    def save(self, path: str | Path) -> None:
        entries = [
            {"rule": rule, "path": file_path, "source_line": source_line, "count": count}
            for (rule, file_path, source_line), count in sorted(self.counts.items())
        ]
        payload = {"version": _VERSION, "findings": entries}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition *findings* into (new, baselined).

        Multiplicity-aware: a baseline entry with count N absorbs at most N
        matching findings; the N+1st is new.
        """
        remaining = Counter(self.counts)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in sorted(findings, key=lambda f: f.sort_key):
            if remaining[finding.baseline_key] > 0:
                remaining[finding.baseline_key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined
