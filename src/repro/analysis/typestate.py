"""Lifecycle typestate extraction: the engine behind rule R11.

The control plane's job-lifecycle contract lives in two places: the
``LEGAL_TRANSITIONS`` table (which edges exist) and the controller's
transition call sites (which edges code actually takes).  This module
statically cross-checks them:

* :func:`extract_typestate` distills one file into plain data — the
  parsed transition table, the ``LifecycleState -> JobState`` collapse
  map, and every transition call site (``self._apply(..,
  LifecycleState.X, ..)`` / ``lifecycle.advance(LifecycleState.X, ..)``)
  together with its *from-state evidence*;
* :func:`resolve_evidence` / :func:`edge_coverage` combine the summaries:
  a call site whose evidence set shares no state with the table's legal
  sources of its target is an illegal edge, and a table edge no call
  site can exercise is dead weight that drifts silently.

From-state evidence is computed by a tiny abstract interpreter over each
function body, tracking which lifecycle states the subject job may be in
at each program point.  Facts are *symbolic* at extract time (they name
``JobState`` members, terminality, ``can()`` targets) and are resolved
against the parsed table at reduce time, so the per-file summaries stay
cacheable plain data.  Recognised evidence:

* ``if job.state is [not] JobState.X: raise/return/continue`` guards;
* ``if <expr>.state.terminal: return`` guards (terminal = no out-edges);
* ``if not <lifecycle>.can(LifecycleState.X): raise`` guards;
* ``<expr>.state is [not] LifecycleState.X`` comparisons;
* a dominating earlier transition call in the same function — after
  ``_apply(.., PREEMPTED, ..)`` succeeds the job *is* PREEMPTED.

Everything else over-approximates to "any state", which keeps the pass
sound for legality (no false illegal-edge reports) and optimistic for
coverage.  The analysis is intraprocedural by design.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Sequence

from .context import FileContext

STATE_ENUM = "LifecycleState"
JOBSTATE_ENUM = "JobState"
TABLE_NAME = "LEGAL_TRANSITIONS"
#: Methods whose call sites take a lifecycle edge when passed an explicit
#: ``LifecycleState.X`` argument.
TRANSITION_METHODS = frozenset({"_apply", "advance"})

#: One symbolic evidence fact: ``{"kind": .., "value": .., "neg": ..}``.
Fact = dict[str, object]
#: One file's typestate summary (plain data, JSON-serialisable).
Summary = dict[str, object]


def _state_attr(node: ast.expr, enum_name: str) -> str | None:
    """``LifecycleState.X`` / ``JobState.X`` member name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == enum_name
    ):
        return node.attr
    return None


def _is_state_read(node: ast.expr) -> bool:
    """True for ``<expr>.state`` attribute reads."""
    return isinstance(node, ast.Attribute) and node.attr == "state"


def _parse_table(value: ast.expr) -> dict[str, list[str]] | None:
    """Parse a ``{LifecycleState.A: frozenset({...}), ...}`` literal."""
    if not isinstance(value, ast.Dict):
        return None
    table: dict[str, list[str]] = {}
    for key, val in zip(value.keys, value.values):
        source = _state_attr(key, STATE_ENUM) if key is not None else None
        if source is None:
            return None
        elements: list[ast.expr]
        if isinstance(val, ast.Call) and isinstance(val.func, ast.Name) and (
            val.func.id == "frozenset"
        ):
            if not val.args:
                elements = []
            elif isinstance(val.args[0], (ast.Set, ast.Tuple, ast.List)):
                elements = list(val.args[0].elts)
            else:
                return None
        elif isinstance(val, (ast.Set, ast.Tuple, ast.List)):
            elements = list(val.elts)
        else:
            return None
        targets: list[str] = []
        for element in elements:
            target = _state_attr(element, STATE_ENUM)
            if target is None:
                return None
            targets.append(target)
        table[source] = sorted(targets)
    return table


def _parse_jobstate_map(value: ast.expr) -> dict[str, str] | None:
    """Parse a ``{LifecycleState.A: JobState.B, ...}`` collapse map."""
    if not isinstance(value, ast.Dict):
        return None
    mapping: dict[str, str] = {}
    for key, val in zip(value.keys, value.values):
        source = _state_attr(key, STATE_ENUM) if key is not None else None
        target = _state_attr(val, JOBSTATE_ENUM)
        if source is None or target is None:
            return None
        mapping[source] = target
    return mapping or None


def _negate(fact: Fact) -> Fact:
    flipped = dict(fact)
    flipped["neg"] = not fact.get("neg", False)
    return flipped


def _parse_guard(test: ast.expr) -> Fact | None:
    """Symbolic fact asserted by an ``if`` test, or None when opaque."""
    neg = False
    while isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        neg = not neg
        test = test.operand
    if isinstance(test, ast.Attribute) and test.attr == "terminal":
        if _is_state_read(test.value):
            return {"kind": "terminal", "neg": neg}
        return None
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        operator = test.ops[0]
        if isinstance(operator, (ast.Is, ast.Eq, ast.IsNot, ast.NotEq)):
            op_neg = isinstance(operator, (ast.IsNot, ast.NotEq))
            left, right = test.left, test.comparators[0]
            for subject, member in ((left, right), (right, left)):
                if not _is_state_read(subject):
                    continue
                job_state = _state_attr(member, JOBSTATE_ENUM)
                if job_state is not None:
                    return {"kind": "jobstate", "value": job_state, "neg": neg ^ op_neg}
                lifecycle_state = _state_attr(member, STATE_ENUM)
                if lifecycle_state is not None:
                    return {"kind": "state", "value": lifecycle_state, "neg": neg ^ op_neg}
        return None
    if (
        isinstance(test, ast.Call)
        and isinstance(test.func, ast.Attribute)
        and test.func.attr == "can"
        and test.args
    ):
        target = _state_attr(test.args[0], STATE_ENUM)
        if target is not None:
            return {"kind": "can", "value": target, "neg": neg}
    return None


def _transition_calls(stmt: ast.stmt) -> list[tuple[ast.Call, str]]:
    """Transition-method calls with an explicit LifecycleState argument."""
    sites: list[tuple[ast.Call, str]] = []
    for node in ast.walk(stmt):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in TRANSITION_METHODS
        ):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            target = _state_attr(arg, STATE_ENUM)
            if target is not None:
                sites.append((node, target))
                break
    return sites


class _EvidenceWalk:
    """Abstract interpretation of one function body over evidence facts.

    ``record(call, target, facts)`` fires for every transition call site
    with the conjunction of facts that dominate it.
    """

    def __init__(self, record: Callable[[ast.Call, str, list[Fact]], None]) -> None:
        self.record = record

    def walk(self, body: Sequence[ast.stmt], facts: list[Fact]) -> tuple[list[Fact], bool]:
        """Returns (facts at fall-through, whether the body terminates)."""
        current = list(facts)
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are walked independently
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Continue, ast.Break)):
                for call, target in _transition_calls(stmt):
                    self.record(call, target, current)
                return current, True
            if isinstance(stmt, ast.If):
                guard = _parse_guard(stmt.test)
                then_facts = current + [guard] if guard else list(current)
                else_facts = current + [_negate(guard)] if guard else list(current)
                then_exit, then_done = self.walk(stmt.body, then_facts)
                else_exit, else_done = self.walk(stmt.orelse, else_facts)
                if then_done and else_done and stmt.orelse:
                    return current, True
                if then_done:
                    current = else_exit
                elif else_done and stmt.orelse:
                    current = then_exit
                # both fall through: branch-local facts don't survive
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                # The loop variable is a fresh subject each iteration.
                self.walk(stmt.body, [])
                self.walk(stmt.orelse, current)
                continue
            if isinstance(stmt, ast.While):
                self.walk(stmt.body, list(current))
                self.walk(stmt.orelse, current)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                current, done = self.walk(stmt.body, current)
                if done:
                    return current, True
                continue
            if isinstance(stmt, ast.Try):
                self.walk(stmt.body, list(current))
                for handler in stmt.handlers:
                    self.walk(handler.body, list(current))
                self.walk(stmt.orelse, list(current))
                self.walk(stmt.finalbody, list(current))
                continue
            sites = _transition_calls(stmt)
            for call, target in sites:
                self.record(call, target, current)
            if sites:
                # After a successful transition the job *is* the target.
                current = [{"kind": "applied", "value": sites[-1][1]}]
        return current, False


def extract_typestate(ctx: FileContext) -> Summary | None:
    """Distill one file's typestate facts; None when it has none."""
    table: dict[str, object] | None = None
    jobstate_of: dict[str, str] | None = None
    callsites: list[dict[str, object]] = []

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and (
            isinstance(node.targets[0], ast.Name)
        ):
            name = node.targets[0].id
            if name == TABLE_NAME:
                parsed = _parse_table(node.value)
                if parsed is not None and table is None:
                    table = {
                        "line": node.lineno,
                        "col": node.col_offset,
                        "source_line": ctx.source_line(node.lineno),
                        "edges": parsed,
                    }
            elif jobstate_of is None:
                jobstate_of = _parse_jobstate_map(node.value)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name) and (
            node.value is not None
        ):
            if node.target.id == TABLE_NAME and table is None:
                parsed = _parse_table(node.value)
                if parsed is not None:
                    table = {
                        "line": node.lineno,
                        "col": node.col_offset,
                        "source_line": ctx.source_line(node.lineno),
                        "edges": parsed,
                    }
            elif jobstate_of is None:
                jobstate_of = _parse_jobstate_map(node.value)

    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        function_name = node.name

        def record(
            call: ast.Call, target: str, facts: list[Fact], _fn: str = function_name
        ) -> None:
            assert isinstance(call.func, ast.Attribute)
            callsites.append(
                {
                    "line": call.lineno,
                    "col": call.col_offset,
                    "source_line": ctx.source_line(call.lineno),
                    "function": _fn,
                    "method": call.func.attr,
                    "target": target,
                    "facts": [dict(fact) for fact in facts],
                }
            )

        _EvidenceWalk(record).walk(node.body, [])

    if table is None and jobstate_of is None and not callsites:
        return None
    return {"table": table, "jobstate_of": jobstate_of, "callsites": callsites}


def resolve_evidence(
    facts: Sequence[Fact],
    states: frozenset[str],
    edges: dict[str, list[str]],
    jobstate_of: dict[str, str] | None,
) -> frozenset[str]:
    """Concrete from-state set implied by symbolic *facts* under a table."""
    evidence = set(states)
    terminal = {state for state in states if not edges.get(state)}
    for fact in facts:
        kind = fact.get("kind")
        value = fact.get("value")
        if kind == "applied":
            matched = {str(value)} & states
        elif kind == "state":
            matched = {str(value)} & states
        elif kind == "terminal":
            matched = set(terminal)
        elif kind == "can":
            matched = {state for state in states if str(value) in edges.get(state, [])}
        elif kind == "jobstate":
            if jobstate_of is None:
                continue  # collapse map unknown: no narrowing
            matched = {
                state for state in states if jobstate_of.get(state) == str(value)
            }
        else:
            continue
        if fact.get("neg"):
            matched = states - matched
        evidence &= matched
    return frozenset(evidence)


@dataclass(frozen=True)
class TypestateModel:
    """The merged project view R11 checks against."""

    table_path: str
    table_line: int
    table_col: int
    table_source_line: str
    edges: dict[str, list[str]]
    jobstate_of: dict[str, str] | None
    #: (path, callsite-summary) pairs, path-sorted.
    callsites: tuple[tuple[str, dict[str, object]], ...]

    @property
    def states(self) -> frozenset[str]:
        return frozenset(self.edges)

    def sources_of(self, target: str) -> frozenset[str]:
        return frozenset(
            state for state, targets in self.edges.items() if target in targets
        )

    def all_edges(self) -> frozenset[tuple[str, str]]:
        return frozenset(
            (source, target)
            for source, targets in self.edges.items()
            for target in targets
        )


def build_model(summaries: Sequence[tuple[str, Summary]]) -> TypestateModel | None:
    """Merge path-sorted summaries; None when no table is in the set."""
    table_entry: tuple[str, dict[str, object]] | None = None
    jobstate_of: dict[str, str] | None = None
    callsites: list[tuple[str, dict[str, object]]] = []
    for path, summary in summaries:
        table = summary.get("table")
        if table is not None and table_entry is None:
            assert isinstance(table, dict)
            table_entry = (path, table)
        collapse = summary.get("jobstate_of")
        if collapse is not None and jobstate_of is None:
            assert isinstance(collapse, dict)
            jobstate_of = {str(k): str(v) for k, v in collapse.items()}
        raw_sites = summary.get("callsites")
        assert isinstance(raw_sites, list)
        for site in raw_sites:
            assert isinstance(site, dict)
            callsites.append((path, site))
    if table_entry is None:
        return None
    table_path, table = table_entry
    edges_raw = table["edges"]
    assert isinstance(edges_raw, dict)
    return TypestateModel(
        table_path=table_path,
        table_line=int(table["line"]),  # type: ignore[call-overload]
        table_col=int(table["col"]),  # type: ignore[call-overload]
        table_source_line=str(table["source_line"]),
        edges={str(k): [str(t) for t in v] for k, v in edges_raw.items()},
        jobstate_of=jobstate_of,
        callsites=tuple(callsites),
    )


def edge_coverage(
    model: TypestateModel,
) -> tuple[frozenset[tuple[str, str]], frozenset[tuple[str, str]]]:
    """(covered, uncovered) edges of the table under the call sites."""
    covered: set[tuple[str, str]] = set()
    for _path, site in model.callsites:
        target = str(site["target"])
        facts = site.get("facts")
        assert isinstance(facts, list)
        evidence = resolve_evidence(facts, model.states, model.edges, model.jobstate_of)
        for source in evidence & model.sources_of(target):
            covered.add((source, target))
    all_edges = model.all_edges()
    return frozenset(covered & all_edges), frozenset(all_edges - covered)
