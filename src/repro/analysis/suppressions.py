"""Inline suppression comments for simlint findings.

Three comment forms are recognised (rule lists are comma-separated; ``all``
suppresses every rule):

* ``# simlint: disable=R3`` — suppress the listed rules on *this* line;
* ``# simlint: disable-next-line=R3`` — suppress them on the next line;
* ``# simlint: disable-file=R2`` — suppress them for the whole file
  (only honoured in the file's first ``FILE_SCOPE_LINES`` lines, so a
  file-wide waiver is visible at the top where reviewers look).

Comments are extracted with :mod:`tokenize`, not regex-over-lines, so a
``# simlint:`` sequence inside a string literal never suppresses anything.
Every suppression must name rules explicitly or say ``all`` — a bare
``# simlint: disable`` is reported as a malformed-suppression finding
rather than silently ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding

#: ``disable-file`` comments beyond this line are ignored (kept visible up top).
FILE_SCOPE_LINES = 20

_DIRECTIVE = re.compile(
    r"#\s*simlint:\s*(?P<verb>disable(?:-next-line|-file)?)\s*(?:=\s*(?P<rules>[\w\s,]+))?"
)


@dataclass
class SuppressionMap:
    """Parsed suppression directives of one file."""

    #: Rule ids suppressed per 1-based line (``{"all"}`` matches any rule).
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: Rule ids suppressed for the entire file.
    file_wide: set[str] = field(default_factory=set)
    #: Malformed directives, reported as findings so typos fail loudly.
    errors: list[Finding] = field(default_factory=list)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_wide or "all" in self.file_wide:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return rule_id in rules or "all" in rules

    def as_dict(self) -> dict[str, object]:
        """Plain-data form for the incremental cache (errors excluded —
        they are cached as findings alongside the rest of the file's)."""
        return {
            "by_line": {str(line): sorted(rules) for line, rules in self.by_line.items()},
            "file_wide": sorted(self.file_wide),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SuppressionMap":
        by_line_raw = data.get("by_line", {})
        file_wide_raw = data.get("file_wide", [])
        assert isinstance(by_line_raw, dict) and isinstance(file_wide_raw, list)
        return cls(
            by_line={int(line): set(rules) for line, rules in by_line_raw.items()},
            file_wide=set(file_wide_raw),
        )


def parse_suppressions(source: str, path: str) -> SuppressionMap:
    """Extract every ``# simlint:`` directive from *source*."""
    suppressions = SuppressionMap()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions  # unparseable files are reported by the runner
    for token in tokens:
        if token.type != tokenize.COMMENT or "simlint" not in token.string:
            continue
        line = token.start[0]
        match = _DIRECTIVE.search(token.string)
        if match is None or match.group("rules") is None:
            suppressions.errors.append(
                Finding(
                    rule_id="S0",
                    path=path,
                    line=line,
                    col=token.start[1],
                    message=(
                        "malformed simlint directive; use "
                        "'# simlint: disable=RULE[,RULE]' "
                        "(or disable-next-line= / disable-file=)"
                    ),
                    source_line=token.line.strip(),
                )
            )
            continue
        rules = {part.strip() for part in match.group("rules").split(",") if part.strip()}
        verb = match.group("verb")
        if verb == "disable":
            suppressions.by_line.setdefault(line, set()).update(rules)
        elif verb == "disable-next-line":
            suppressions.by_line.setdefault(line + 1, set()).update(rules)
        elif line <= FILE_SCOPE_LINES:  # disable-file
            suppressions.file_wide.update(rules)
        else:
            suppressions.errors.append(
                Finding(
                    rule_id="S0",
                    path=path,
                    line=line,
                    col=token.start[1],
                    message=(
                        "disable-file directives must appear in the first "
                        f"{FILE_SCOPE_LINES} lines of the file"
                    ),
                    source_line=token.line.strip(),
                )
            )
    return suppressions
