"""Rule registry: one place that knows every simlint rule.

Rules self-register via the :func:`register` decorator at import time (the
:mod:`repro.analysis.rules` package imports each rule module).  Two rule
shapes exist:

* :class:`Rule` — pure per-file checks; ``check(ctx)`` yields findings for
  one :class:`~repro.analysis.context.FileContext`;
* :class:`ProjectRule` — whole-project checks that need every file at once
  (e.g. the event-priority table must cover subclasses defined anywhere).

Each rule carries its id, a short name, the invariant's rationale (surfaced
by ``--list-rules`` and the docs), and the path *scope* it applies to —
scoping lives here, not inside the checks, so one glance at a rule class
answers "where does this fire?".
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Sequence

from .context import FileContext
from .findings import Finding


class BaseRule(abc.ABC):
    """Shared metadata contract of per-file and project rules."""

    #: Stable short identifier, e.g. ``R1`` — what suppressions name.
    id: str = ""
    #: Human-oriented slug, e.g. ``unseeded-rng``.
    name: str = ""
    #: Why the invariant exists — one or two sentences.
    rationale: str = ""
    #: Path fragments the rule applies to; empty = every analyzed file.
    scope: tuple[str, ...] = ()
    #: Path fragments exempt from the rule (checked after ``scope``).
    exempt: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        if self.scope and not ctx.path_matches(self.scope):
            return False
        return not (self.exempt and ctx.path_matches(self.exempt))


class Rule(BaseRule):
    """A per-file rule."""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (already scope-filtered)."""


class ProjectRule(BaseRule):
    """A rule that inspects every analyzed file together.

    Project rules are written in map/reduce form so the incremental cache
    can store their per-file work: :meth:`extract` distills one file into a
    plain-data (JSON-serialisable) summary keyed by the file's content
    hash, and :meth:`reduce` combines every summary into findings.  The
    reduce step must be a pure function of the summaries — it reruns on
    every lint invocation (cheap), while extract only runs on cache misses.
    """

    @abc.abstractmethod
    def extract(self, ctx: FileContext) -> object | None:
        """Distill one file into a plain-data summary (None = nothing)."""

    @abc.abstractmethod
    def reduce(self, summaries: Sequence[tuple[str, object]]) -> Iterator[Finding]:
        """Combine ``(path, summary)`` pairs (path-sorted) into findings."""

    def check_project(self, contexts: Iterable[FileContext]) -> Iterator[Finding]:
        """Convenience: extract + reduce in one pass (uncached path)."""
        pairs = [(ctx.path, self.extract(ctx)) for ctx in contexts]
        yield from self.reduce(
            sorted(
                ((path, summary) for path, summary in pairs if summary is not None),
                key=lambda pair: pair[0],
            )
        )


_RULES: dict[str, BaseRule] = {}


def register(rule_class: type[BaseRule]) -> type[BaseRule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = rule_class()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {rule_class.__name__} must define id and name")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return rule_class


def all_rules() -> tuple[BaseRule, ...]:
    """Every registered rule, ordered by id (R1, R2, …, R10, …)."""
    from . import rules  # noqa: F401  — importing populates the registry

    def _order(rule_id: str) -> tuple[str, int]:
        head = rule_id.rstrip("0123456789")
        tail = rule_id[len(head):]
        return (head, int(tail) if tail else 0)

    return tuple(_RULES[rule_id] for rule_id in sorted(_RULES, key=_order))


def rule_by_id(rule_id: str) -> BaseRule:
    from . import rules  # noqa: F401

    if rule_id not in _RULES:
        raise KeyError(f"unknown simlint rule {rule_id!r}")
    return _RULES[rule_id]
