"""Finding records produced by simlint rules.

A :class:`Finding` pins one invariant violation to a file, line and column,
carrying the rule id and a human-oriented message.  Findings are value
objects: the runner sorts, de-duplicates against the baseline, and renders
them without any rule-specific knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One invariant violation at a concrete source location.

    Attributes:
        rule_id: Short rule identifier (``R1`` … ``R8``).
        path: Path of the offending file as given to the analyzer.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        message: What is wrong and what to do instead.
        source_line: The stripped source text of ``line`` — the baseline
            keys on it so grandfathered findings survive line-number drift.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Line-number-independent identity used by the baseline file."""
        return (self.rule_id, self.path, self.source_line)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, str | int]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source_line": self.source_line,
        }

    @classmethod
    def from_dict(cls, data: dict[str, str | int]) -> "Finding":
        """Inverse of :meth:`as_dict` (cache deserialisation)."""
        return cls(
            rule_id=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
            source_line=str(data.get("source_line", "")),
        )
