"""Content-addressed incremental cache for simlint.

The same discipline as :mod:`repro.sweep.cache`, applied to the analyzer
itself: one JSON record per analyzed file, keyed by::

    sha256(display path + "\\0" + file bytes + "\\0" + engine fingerprint)

where the *engine fingerprint* hashes every ``.py`` file of the
``repro.analysis`` package — editing any rule, the dataflow engine, or
the runner invalidates the whole cache, exactly like
:func:`repro.sweep.fingerprint.code_fingerprint` invalidates sweep
results.  A record stores everything the per-file phase computed:

* the file's per-file rule findings (plus S0/P0 diagnostics), *before*
  suppression filtering — filtering is a merge-time concern;
* the parsed suppression map (needed to filter project-rule findings
  against this file at merge time);
* every project rule's ``extract`` summary, so project rules rerun only
  their cheap ``reduce`` step on warm runs.

Records are written atomically (temp file + rename) so concurrent lints
sharing one cache directory never observe torn JSON.  A record that
fails to load or validate is treated as a miss and rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding
from .suppressions import SuppressionMap

#: Environment override for the cache directory (CI points this at a
#: persisted workspace path).
ENV_CACHE_DIR = "TCLOUD_SIMLINT_CACHE"
#: Bumped when the record layout changes (invalidates old records).
CACHE_FORMAT_VERSION = 1

_RECORD_KEYS = frozenset({"version", "path", "findings", "suppressions", "summaries"})


def default_cache_dir() -> Path:
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "tcloud-simlint"


def engine_fingerprint() -> str:
    """Digest of the analyzer's own source — part of every cache key."""
    package_root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(package_root.rglob("*.py")):
        digest.update(source.relative_to(package_root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def file_key(display_path: str, data: bytes, engine: str) -> str:
    """Cache key of one file's analysis under one engine fingerprint."""
    digest = hashlib.sha256()
    digest.update(display_path.encode("utf-8"))
    digest.update(b"\0")
    digest.update(data)
    digest.update(b"\0")
    digest.update(engine.encode("utf-8"))
    digest.update(b"\0")
    digest.update(str(CACHE_FORMAT_VERSION).encode("utf-8"))
    return digest.hexdigest()


@dataclass
class FileRecord:
    """Everything the per-file analysis phase produced for one file."""

    path: str
    #: Per-file rule findings + S0/P0 diagnostics, pre-suppression.
    findings: list[Finding] = field(default_factory=list)
    suppressions: SuppressionMap = field(default_factory=SuppressionMap)
    #: Project-rule ``extract`` summaries by rule id (absent = None).
    summaries: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "version": CACHE_FORMAT_VERSION,
            "path": self.path,
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressions": self.suppressions.as_dict(),
            "summaries": self.summaries,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FileRecord":
        if data.get("version") != CACHE_FORMAT_VERSION:
            raise ValueError("stale cache record version")
        if not _RECORD_KEYS <= data.keys():
            raise ValueError("malformed cache record")
        findings_raw = data["findings"]
        suppressions_raw = data["suppressions"]
        summaries_raw = data["summaries"]
        if not (
            isinstance(findings_raw, list)
            and isinstance(suppressions_raw, dict)
            and isinstance(summaries_raw, dict)
        ):
            raise ValueError("malformed cache record")
        return cls(
            path=str(data["path"]),
            findings=[Finding.from_dict(item) for item in findings_raw],
            suppressions=SuppressionMap.from_dict(suppressions_raw),
            summaries=dict(summaries_raw),
        )


class LintCache:
    """On-disk record store with hit/miss accounting."""

    def __init__(self, root: Path | None = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _record_path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings sane at repo scale.
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> FileRecord | None:
        record_path = self._record_path(key)
        try:
            payload = json.loads(record_path.read_text(encoding="utf-8"))
            record = FileRecord.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: FileRecord) -> None:
        record_path = self._record_path(key)
        record_path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record.as_dict(), sort_keys=True)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=record_path.parent,
            prefix=f".{key[:12]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(payload)
            os.replace(handle.name, record_path)
        except BaseException:
            Path(handle.name).unlink(missing_ok=True)
            raise

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
