"""Parsing task descriptions: dicts, JSON, and a YAML subset.

Task files are written by users in a YAML-like format (the cluster's
``task.yaml``); this module ships a dependency-free parser for the subset
the schema needs — nested mappings by indentation, lists with ``- `` items
(scalars or inline mappings), scalar typing (int/float/bool/null/strings,
quoted or bare), and ``#`` comments.  Anything outside the subset raises
:class:`~repro.errors.SchemaError` with a line number.

:func:`spec_from_dict` turns the parsed (or JSON-loaded) mapping into a
validated :class:`~repro.schema.taskspec.TaskSpec`, rejecting unknown keys
so typos fail loudly rather than silently using defaults.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import SchemaError
from .taskspec import EnvironmentSpec, FileSpec, QosSpec, ResourceSpec, TaskSpec
from .workflow import ArtifactSpec, StageSpec, WorkflowSpec

# --------------------------------------------------------------------------
# YAML-subset parsing
# --------------------------------------------------------------------------


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("null", "~", ""):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _strip_comment(line: str) -> str:
    """Remove a trailing comment, respecting simple quoting."""
    in_single = in_double = False
    for index, char in enumerate(line):
        if char == "'" and not in_double:
            in_single = not in_single
        elif char == '"' and not in_single:
            in_double = not in_double
        elif char == "#" and not in_single and not in_double:
            return line[:index]
    return line


class _Lines:
    """Cursor over (indent, content, line_number) of significant lines."""

    def __init__(self, text: str) -> None:
        self.items: list[tuple[int, str, int]] = []
        for number, raw in enumerate(text.splitlines(), start=1):
            if "\t" in raw[: len(raw) - len(raw.lstrip())]:
                raise SchemaError(f"line {number}: tabs are not allowed in indentation")
            stripped = _strip_comment(raw).rstrip()
            if not stripped.strip():
                continue
            indent = len(stripped) - len(stripped.lstrip())
            self.items.append((indent, stripped.strip(), number))
        self.position = 0

    def peek(self) -> tuple[int, str, int] | None:
        return self.items[self.position] if self.position < len(self.items) else None

    def next(self) -> tuple[int, str, int]:
        item = self.items[self.position]
        self.position += 1
        return item


def _parse_block(lines: _Lines, indent: int) -> Any:
    """Parse the block starting at *indent*: mapping or list."""
    entry = lines.peek()
    assert entry is not None
    if entry[1].startswith("- "):
        return _parse_list(lines, indent)
    return _parse_mapping(lines, indent)


def _parse_mapping(lines: _Lines, indent: int) -> dict[str, Any]:
    result: dict[str, Any] = {}
    while True:
        entry = lines.peek()
        if entry is None or entry[0] < indent:
            return result
        line_indent, content, number = entry
        if line_indent != indent:
            raise SchemaError(f"line {number}: unexpected indentation")
        if content.startswith("- "):
            raise SchemaError(f"line {number}: list item where a key was expected")
        if ":" not in content:
            raise SchemaError(f"line {number}: expected 'key: value'")
        lines.next()
        key, _colon, remainder = content.partition(":")
        key = key.strip()
        if not key:
            raise SchemaError(f"line {number}: empty key")
        if key in result:
            raise SchemaError(f"line {number}: duplicate key {key!r}")
        remainder = remainder.strip()
        if remainder:
            result[key] = _parse_scalar(remainder)
            continue
        child = lines.peek()
        if child is None or child[0] <= indent:
            result[key] = None
        else:
            result[key] = _parse_block(lines, child[0])


def _parse_list(lines: _Lines, indent: int) -> list[Any]:
    result: list[Any] = []
    while True:
        entry = lines.peek()
        if entry is None or entry[0] < indent:
            return result
        line_indent, content, number = entry
        if line_indent != indent or not content.startswith("- "):
            raise SchemaError(f"line {number}: expected a '- ' list item")
        lines.next()
        body = content[2:].strip()
        if ":" in body and not (body.startswith('"') or body.startswith("'")):
            # Inline mapping item: '- key: value'; following deeper lines
            # extend the same mapping.
            key, _colon, remainder = body.partition(":")
            item = {key.strip(): _parse_scalar(remainder)}
            child = lines.peek()
            if child is not None and child[0] > indent:
                item.update(_parse_mapping(lines, child[0]))
            result.append(item)
        else:
            result.append(_parse_scalar(body))


def parse_yaml_subset(text: str) -> Any:
    """Parse the YAML subset; top level must be a mapping or a list."""
    lines = _Lines(text)
    if lines.peek() is None:
        return {}
    return _parse_block(lines, lines.peek()[0])


def _emit_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    needs_quoting = (
        text == ""
        or text != text.strip()
        or any(ch in text for ch in ":#'\"\n")
        or text.lower() in ("null", "true", "false", "~")
        or text.startswith("- ")
        or _looks_numeric(text)
    )
    if needs_quoting:
        return '"' + text.replace('"', "'") + '"'
    return text


def _looks_numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def dump_yaml_subset(data: Any, indent: int = 0) -> str:
    """Emit a mapping/list/scalar tree in the YAML subset this module parses.

    The emitter is the parser's inverse on the supported value domain
    (mappings, lists, str/int/float/bool/None), which the property tests
    assert: ``parse(dump(x)) == x``.
    """
    pad = " " * indent
    if isinstance(data, dict):
        if not data:
            raise SchemaError("cannot emit an empty mapping in the YAML subset")
        lines = []
        for key, value in data.items():
            key_text = str(key)
            if not key_text or key_text != key_text.strip() or ":" in key_text or "#" in key_text:
                raise SchemaError(f"key {key!r} is not representable in the YAML subset")
            if isinstance(value, (dict, list)) and value:
                lines.append(f"{pad}{key_text}:")
                lines.append(dump_yaml_subset(value, indent + 2))
            elif isinstance(value, (dict, list)):
                raise SchemaError(f"key {key!r}: empty containers are not representable")
            else:
                lines.append(f"{pad}{key_text}: {_emit_scalar(value)}")
        return "\n".join(lines)
    if isinstance(data, list):
        if not data:
            raise SchemaError("cannot emit an empty list in the YAML subset")
        lines = []
        for item in data:
            if isinstance(item, dict):
                if not item:
                    raise SchemaError("empty mapping list item is not representable")
                first_key, *rest_keys = item.keys()
                lines.append(f"{pad}- {first_key}: {_emit_scalar(item[first_key])}")
                for key in rest_keys:
                    value = item[key]
                    if isinstance(value, (dict, list)):
                        raise SchemaError(
                            "nested containers inside list items are not representable"
                        )
                    lines.append(f"{pad}  {key}: {_emit_scalar(value)}")
            elif isinstance(item, list):
                raise SchemaError("nested lists are not representable in the YAML subset")
            else:
                lines.append(f"{pad}- {_emit_scalar(item)}")
        return "\n".join(lines)
    return f"{pad}{_emit_scalar(data)}"


def spec_to_yaml(spec: TaskSpec) -> str:
    """Render a :class:`TaskSpec` as a task.yaml document."""
    data = spec.to_dict()

    def prune(value: Any) -> Any:
        if isinstance(value, dict):
            cleaned = {k: prune(v) for k, v in value.items()}
            return {k: v for k, v in cleaned.items() if v not in (None, "", [], {}, ())}
        if isinstance(value, (list, tuple)):
            return [prune(v) for v in value]
        return value

    return dump_yaml_subset(prune(data)) + "\n"


# --------------------------------------------------------------------------
# Dict → TaskSpec
# --------------------------------------------------------------------------

_TOP_KEYS = {
    "name",
    "entrypoint",
    "code_files",
    "datasets",
    "environment",
    "resources",
    "qos",
    "model",
    "runtime",
    "cluster",
}


def _check_keys(data: dict[str, Any], allowed: set[str], context: str) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise SchemaError(f"{context}: unknown keys {sorted(unknown)}")


def _files_from(items: Any, context: str) -> tuple[FileSpec, ...]:
    if items is None:
        return ()
    if not isinstance(items, list):
        raise SchemaError(f"{context} must be a list of file entries")
    files = []
    for item in items:
        if not isinstance(item, dict):
            raise SchemaError(f"{context}: each file needs path/size_bytes/sha256")
        _check_keys(item, {"path", "size_bytes", "sha256"}, context)
        try:
            files.append(
                FileSpec(
                    path=str(item["path"]),
                    size_bytes=int(item["size_bytes"]),
                    sha256=str(item["sha256"]),
                )
            )
        except KeyError as exc:
            raise SchemaError(f"{context}: missing file field {exc}") from exc
    return tuple(files)


def spec_from_dict(data: dict[str, Any]) -> TaskSpec:
    """Build a validated :class:`TaskSpec` from a parsed mapping."""
    if not isinstance(data, dict):
        raise SchemaError(f"task description must be a mapping, got {type(data).__name__}")
    _check_keys(data, _TOP_KEYS, "task")
    for required in ("name", "entrypoint"):
        if required not in data or data[required] in (None, ""):
            raise SchemaError(f"task: missing required field {required!r}")

    env_data = data.get("environment") or {}
    _check_keys(env_data, {"image", "python_version", "pip_packages", "env_vars"}, "environment")
    pip = env_data.get("pip_packages") or []
    if not isinstance(pip, list):
        raise SchemaError("environment.pip_packages must be a list")
    environment = EnvironmentSpec(
        image=str(env_data.get("image") or ""),
        python_version=str(env_data.get("python_version") or "3.10"),
        pip_packages=tuple(str(p) for p in pip),
        env_vars={str(k): str(v) for k, v in (env_data.get("env_vars") or {}).items()},
    )

    res_data = data.get("resources") or {}
    _check_keys(
        res_data,
        {
            "num_gpus",
            "gpus_per_node",
            "gpu_type",
            "cpus_per_gpu",
            "memory_gb_per_gpu",
            "walltime_hours",
            "partition",
            "rdma",
        },
        "resources",
    )
    resources = ResourceSpec(
        num_gpus=int(res_data.get("num_gpus", 1)),
        gpus_per_node=(
            int(res_data["gpus_per_node"]) if res_data.get("gpus_per_node") is not None else None
        ),
        gpu_type=res_data.get("gpu_type"),
        cpus_per_gpu=int(res_data.get("cpus_per_gpu", 4)),
        memory_gb_per_gpu=float(res_data.get("memory_gb_per_gpu", 32.0)),
        walltime_hours=float(res_data.get("walltime_hours", 24.0)),
        partition=res_data.get("partition"),
        rdma=bool(res_data.get("rdma", False)),
    )

    qos_data = data.get("qos") or {}
    _check_keys(qos_data, {"tier", "preemptible"}, "qos")
    qos = QosSpec(
        tier=str(qos_data.get("tier", "guaranteed")),
        preemptible=qos_data.get("preemptible"),
    )

    return TaskSpec(
        name=str(data["name"]),
        entrypoint=str(data["entrypoint"]),
        code_files=_files_from(data.get("code_files"), "code_files"),
        datasets=_files_from(data.get("datasets"), "datasets"),
        environment=environment,
        resources=resources,
        qos=qos,
        model=str(data.get("model") or ""),
        runtime=data.get("runtime"),
        cluster=data.get("cluster"),
    )


def parse_task_text(text: str) -> TaskSpec:
    """Parse a task description from JSON or the YAML subset."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"invalid JSON task description: {exc}") from exc
    else:
        data = parse_yaml_subset(text)
    return spec_from_dict(data)


def parse_task_file(path: str | Path) -> TaskSpec:
    """Parse a ``task.yaml`` / ``task.json`` file into a :class:`TaskSpec`."""
    return parse_task_text(Path(path).read_text())


# --------------------------------------------------------------------------
# Dict → WorkflowSpec
# --------------------------------------------------------------------------

_WORKFLOW_KEYS = {"workflow", "stages", "artifacts"}
_STAGE_ONLY_KEYS = {"depends_on", "consumes"}


def _names_from(items: Any, context: str) -> tuple[str, ...]:
    if items is None:
        return ()
    if not isinstance(items, list):
        raise SchemaError(f"{context} must be a list of names")
    return tuple(str(item) for item in items)


def workflow_from_dict(data: dict[str, Any]) -> WorkflowSpec:
    """Build a validated :class:`WorkflowSpec` from a parsed mapping.

    The document shape extends the ``task.yaml`` subset: a top-level
    ``workflow: <name>``, a ``stages`` list whose items are full task
    mappings plus optional ``depends_on``/``consumes`` name lists, and an
    optional ``artifacts`` list of ``{name, producer, size_bytes}``.
    """
    if not isinstance(data, dict):
        raise SchemaError(
            f"workflow description must be a mapping, got {type(data).__name__}"
        )
    _check_keys(data, _WORKFLOW_KEYS, "workflow")
    if data.get("workflow") in (None, ""):
        raise SchemaError("workflow: missing required field 'workflow' (the name)")
    stage_items = data.get("stages")
    if not isinstance(stage_items, list) or not stage_items:
        raise SchemaError("workflow: 'stages' must be a non-empty list")

    stages = []
    for item in stage_items:
        if not isinstance(item, dict):
            raise SchemaError("workflow: each stage must be a task mapping")
        _check_keys(item, _TOP_KEYS | _STAGE_ONLY_KEYS, "stage")
        task_data = {k: v for k, v in item.items() if k not in _STAGE_ONLY_KEYS}
        stages.append(
            StageSpec(
                task=spec_from_dict(task_data),
                depends_on=_names_from(item.get("depends_on"), "stage.depends_on"),
                consumes=_names_from(item.get("consumes"), "stage.consumes"),
            )
        )

    artifact_items = data.get("artifacts") or []
    if not isinstance(artifact_items, list):
        raise SchemaError("workflow: 'artifacts' must be a list")
    artifacts = []
    for item in artifact_items:
        if not isinstance(item, dict):
            raise SchemaError("workflow: each artifact needs name/producer/size_bytes")
        _check_keys(item, {"name", "producer", "size_bytes"}, "artifact")
        try:
            artifacts.append(
                ArtifactSpec(
                    name=str(item["name"]),
                    producer=str(item["producer"]),
                    size_bytes=int(item["size_bytes"]),
                )
            )
        except KeyError as exc:
            raise SchemaError(f"artifact: missing field {exc}") from exc

    return WorkflowSpec(
        name=str(data["workflow"]),
        stages=tuple(stages),
        artifacts=tuple(artifacts),
    )


def parse_workflow_text(text: str) -> WorkflowSpec:
    """Parse a workflow description from JSON or the YAML subset."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"invalid JSON workflow description: {exc}") from exc
    else:
        data = parse_yaml_subset(text)
    return workflow_from_dict(data)


def parse_workflow_file(path: str | Path) -> WorkflowSpec:
    """Parse a ``workflow.yaml`` / ``.json`` file into a :class:`WorkflowSpec`."""
    return parse_workflow_text(Path(path).read_text())
