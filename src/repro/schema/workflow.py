"""Workflow DAGs: multi-stage task compositions with declared artifacts.

A :class:`WorkflowSpec` composes named :class:`~repro.schema.taskspec.TaskSpec`
stages into a directed acyclic graph.  Edges come from two places: explicit
``depends_on`` declarations, and *artifacts* — named outputs a producer stage
writes and downstream stages consume.  Declaring the artifact (producer,
size_bytes) is what lets the compiler and the transfer-aware placement policy
reason about how much data must move across the leaf–spine fabric between
stages.

Like :class:`TaskSpec`, workflows are frozen, strictly validated at
construction (duplicate stage names, dangling references and dependency
cycles are all :class:`~repro.errors.SchemaError`\\ s), and carry a canonical
``fingerprint()`` so identical pipelines are identical artifacts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable

from ..errors import SchemaError
from .taskspec import _NAME_RE, TaskSpec


@dataclass(frozen=True)
class ArtifactSpec:
    """One inter-stage artifact: produced by one stage, consumed downstream."""

    name: str
    producer: str
    size_bytes: int

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SchemaError(f"artifact name {self.name!r} must match {_NAME_RE.pattern}")
        if not _NAME_RE.match(self.producer):
            raise SchemaError(
                f"artifact {self.name}: producer {self.producer!r} must match "
                f"{_NAME_RE.pattern}"
            )
        if self.size_bytes < 0:
            raise SchemaError(f"artifact {self.name}: negative size")


@dataclass(frozen=True)
class StageSpec:
    """One stage of a workflow: a task plus its incoming dependency edges.

    ``depends_on`` names stages that must finish first (control dependency);
    ``consumes`` names artifacts whose producers become dependencies too
    (data dependency — these are the edges that carry bytes).
    """

    task: TaskSpec
    depends_on: tuple[str, ...] = ()
    consumes: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.task.name

    def __post_init__(self) -> None:
        for upstream in self.depends_on:
            if upstream == self.task.name:
                raise SchemaError(f"stage {self.name!r} depends on itself")
        if len(set(self.depends_on)) != len(self.depends_on):
            raise SchemaError(f"stage {self.name!r}: duplicate depends_on entries")
        if len(set(self.consumes)) != len(self.consumes):
            raise SchemaError(f"stage {self.name!r}: duplicate consumes entries")


@dataclass(frozen=True)
class WorkflowSpec:
    """A frozen, fingerprinted DAG of task stages.

    Validation at construction guarantees every instance is well-formed:
    unique stage names, every ``depends_on``/``consumes``/producer reference
    resolves, and the dependency graph is acyclic (checked by running the
    topological sort).
    """

    name: str
    stages: tuple[StageSpec, ...]
    artifacts: tuple[ArtifactSpec, ...] = ()

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SchemaError(f"workflow name {self.name!r} must match {_NAME_RE.pattern}")
        if not self.stages:
            raise SchemaError(f"workflow {self.name!r} has no stages")
        names = [stage.name for stage in self.stages]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(
                f"workflow {self.name!r}: duplicate stage names {sorted(duplicates)}"
            )
        artifact_names = [artifact.name for artifact in self.artifacts]
        duplicate_artifacts = {n for n in artifact_names if artifact_names.count(n) > 1}
        if duplicate_artifacts:
            raise SchemaError(
                f"workflow {self.name!r}: duplicate artifact names "
                f"{sorted(duplicate_artifacts)}"
            )
        stage_names = set(names)
        for artifact in self.artifacts:
            if artifact.producer not in stage_names:
                raise SchemaError(
                    f"workflow {self.name!r}: artifact {artifact.name!r} names "
                    f"unknown producer {artifact.producer!r}"
                )
        by_artifact = {artifact.name: artifact for artifact in self.artifacts}
        for stage in self.stages:
            for upstream in stage.depends_on:
                if upstream not in stage_names:
                    raise SchemaError(
                        f"workflow {self.name!r}: stage {stage.name!r} depends on "
                        f"unknown stage {upstream!r}"
                    )
            for consumed in stage.consumes:
                artifact = by_artifact.get(consumed)
                if artifact is None:
                    raise SchemaError(
                        f"workflow {self.name!r}: stage {stage.name!r} consumes "
                        f"undeclared artifact {consumed!r}"
                    )
                if artifact.producer == stage.name:
                    raise SchemaError(
                        f"workflow {self.name!r}: stage {stage.name!r} consumes its "
                        f"own artifact {consumed!r}"
                    )
        # Cycle rejection: a workflow that cannot be topologically ordered
        # is not constructible.
        self.topological_order()

    # -- graph accessors ----------------------------------------------------

    def stage(self, name: str) -> StageSpec:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise SchemaError(f"workflow {self.name!r} has no stage {name!r}")

    def dependencies_of(self, name: str) -> tuple[str, ...]:
        """Upstream stage names of *name*: explicit plus artifact producers.

        Declaration order is preserved and duplicates (a stage both named in
        ``depends_on`` and producing a consumed artifact) collapse.
        """
        stage = self.stage(name)
        by_artifact = {artifact.name: artifact for artifact in self.artifacts}
        upstream: list[str] = []
        for dep in stage.depends_on:
            if dep not in upstream:
                upstream.append(dep)
        for consumed in stage.consumes:
            producer = by_artifact[consumed].producer
            if producer not in upstream:
                upstream.append(producer)
        return tuple(upstream)

    def artifacts_of(self, producer: str) -> tuple[ArtifactSpec, ...]:
        """Artifacts the named stage produces (declaration order)."""
        return tuple(a for a in self.artifacts if a.producer == producer)

    def inbound_bytes(self, name: str) -> int:
        """Total artifact bytes the named stage must fetch before starting."""
        by_artifact = {artifact.name: artifact for artifact in self.artifacts}
        return sum(by_artifact[consumed].size_bytes for consumed in self.stage(name).consumes)

    def outbound_bytes(self, name: str) -> int:
        """Total artifact bytes the named stage produces."""
        return sum(artifact.size_bytes for artifact in self.artifacts_of(name))

    # -- ordering and bounds ------------------------------------------------

    def topological_order(self) -> tuple[str, ...]:
        """Kahn's algorithm with declaration-order tie-breaking.

        Raises :class:`SchemaError` naming the stuck stages when the graph
        has a cycle.
        """
        order: list[str] = []
        placed: set[str] = set()
        remaining = [stage.name for stage in self.stages]
        while remaining:
            ready = [
                name
                for name in remaining
                if all(dep in placed for dep in self.dependencies_of(name))
            ]
            if not ready:
                raise SchemaError(
                    f"workflow {self.name!r}: dependency cycle involving "
                    f"{sorted(remaining)}"
                )
            for name in ready:
                order.append(name)
                placed.add(name)
            remaining = [name for name in remaining if name not in placed]
        return tuple(order)

    def critical_path_seconds(self, duration_of: Callable[[str], float]) -> float:
        """Longest dependency chain under per-stage durations.

        This is the analytical makespan lower bound for the workflow on an
        unconstrained cluster with free data movement: no schedule can beat
        the longest chain of stage durations.  ``duration_of`` maps a stage
        name to its execution seconds.
        """
        finish: dict[str, float] = {}
        for name in self.topological_order():
            start = max(
                (finish[dep] for dep in self.dependencies_of(name)), default=0.0
            )
            finish[name] = start + duration_of(name)
        return max(finish.values())

    # -- identity -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "stages": [
                {
                    "task": stage.task.to_dict(),
                    "depends_on": list(stage.depends_on),
                    "consumes": list(stage.consumes),
                }
                for stage in self.stages
            ],
            "artifacts": [
                {
                    "name": artifact.name,
                    "producer": artifact.producer,
                    "size_bytes": artifact.size_bytes,
                }
                for artifact in self.artifacts
            ],
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form — the workflow's identity."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, default=list)
        return hashlib.sha256(canonical.encode()).hexdigest()
