"""Task Schema Layer: self-contained, reproducible task descriptions."""

from .parser import (
    dump_yaml_subset,
    parse_task_file,
    parse_task_text,
    parse_workflow_file,
    parse_workflow_text,
    parse_yaml_subset,
    spec_from_dict,
    spec_to_yaml,
    workflow_from_dict,
)
from .taskspec import EnvironmentSpec, FileSpec, QosSpec, ResourceSpec, TaskSpec
from .validate import (
    ValidationIssue,
    ensure_valid,
    ensure_valid_workflow,
    validate_spec,
    validate_workflow,
)
from .workflow import ArtifactSpec, StageSpec, WorkflowSpec

__all__ = [
    "ArtifactSpec",
    "EnvironmentSpec",
    "FileSpec",
    "QosSpec",
    "ResourceSpec",
    "StageSpec",
    "TaskSpec",
    "ValidationIssue",
    "WorkflowSpec",
    "dump_yaml_subset",
    "ensure_valid",
    "ensure_valid_workflow",
    "parse_task_file",
    "parse_task_text",
    "parse_workflow_file",
    "parse_workflow_text",
    "parse_yaml_subset",
    "spec_from_dict",
    "spec_to_yaml",
    "validate_spec",
    "validate_workflow",
    "workflow_from_dict",
]
