"""Task Schema Layer: self-contained, reproducible task descriptions."""

from .parser import (
    dump_yaml_subset,
    parse_task_file,
    parse_task_text,
    parse_yaml_subset,
    spec_from_dict,
    spec_to_yaml,
)
from .taskspec import EnvironmentSpec, FileSpec, QosSpec, ResourceSpec, TaskSpec
from .validate import ValidationIssue, ensure_valid, validate_spec

__all__ = [
    "EnvironmentSpec",
    "FileSpec",
    "QosSpec",
    "ResourceSpec",
    "TaskSpec",
    "ValidationIssue",
    "dump_yaml_subset",
    "ensure_valid",
    "parse_task_file",
    "parse_task_text",
    "parse_yaml_subset",
    "spec_from_dict",
    "spec_to_yaml",
    "validate_spec",
]
