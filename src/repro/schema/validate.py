"""Cross-field validation of task specs against a target cluster.

Schema-level validation (field shapes) lives on the dataclasses; this
module validates the *semantics* that need context: does the requested GPU
type exist on the target cluster, does the partition admit the job, does
the per-GPU memory cover the declared model's working set.  The frontend
runs these checks at submission so users fail in seconds, not after hours
in the queue.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import Cluster
from ..errors import SchemaError
from ..workload.models import MODEL_CATALOG
from .taskspec import TaskSpec
from .workflow import WorkflowSpec


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found during semantic validation."""

    severity: str  # "error" | "warning"
    field: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.field}: {self.message}"


def validate_spec(spec: TaskSpec, cluster: Cluster | None = None) -> list[ValidationIssue]:
    """Return all issues found; errors make the spec unsubmittable."""
    issues: list[ValidationIssue] = []
    issues.extend(_validate_files(spec))
    issues.extend(_validate_model(spec))
    if cluster is not None:
        issues.extend(_validate_against_cluster(spec, cluster))
    return issues


def validate_workflow(
    workflow: WorkflowSpec, cluster: Cluster | None = None
) -> list[ValidationIssue]:
    """Validate a workflow: stage-name uniqueness plus every stage's spec.

    Stage issues are reported with a ``stages[<name>].`` field prefix so the
    user can tell which stage failed.
    """
    issues: list[ValidationIssue] = []
    names = [stage.name for stage in workflow.stages]
    duplicates = {n for n in names if names.count(n) > 1}
    if duplicates:
        issues.append(
            ValidationIssue(
                "error",
                "stages",
                f"duplicate stage names: {sorted(duplicates)}",
            )
        )
    for stage in workflow.stages:
        for issue in validate_spec(stage.task, cluster):
            issues.append(
                ValidationIssue(
                    issue.severity,
                    f"stages[{stage.name}].{issue.field}",
                    issue.message,
                )
            )
    return issues


def ensure_valid_workflow(
    workflow: WorkflowSpec, cluster: Cluster | None = None
) -> list[ValidationIssue]:
    """Validate a workflow; raise :class:`SchemaError` on any error.

    Returns the warnings so callers can surface them.
    """
    issues = validate_workflow(workflow, cluster)
    errors = [issue for issue in issues if issue.severity == "error"]
    if errors:
        details = "; ".join(str(issue) for issue in errors)
        raise SchemaError(f"workflow {workflow.name!r} failed validation: {details}")
    return [issue for issue in issues if issue.severity == "warning"]


def ensure_valid(spec: TaskSpec, cluster: Cluster | None = None) -> list[ValidationIssue]:
    """Validate; raise :class:`SchemaError` on any error-severity issue.

    Returns the warnings so callers can surface them.
    """
    issues = validate_spec(spec, cluster)
    errors = [issue for issue in issues if issue.severity == "error"]
    if errors:
        details = "; ".join(str(issue) for issue in errors)
        raise SchemaError(f"task {spec.name!r} failed validation: {details}")
    return [issue for issue in issues if issue.severity == "warning"]


def _validate_files(spec: TaskSpec) -> list[ValidationIssue]:
    """Report duplicate file paths across code_files and datasets.

    The :class:`TaskSpec` constructor rejects these too; repeating the check
    here keeps the validator complete for specs arriving through other
    construction paths (deserialisation, test doubles).
    """
    paths = [f.path for f in spec.code_files + spec.datasets]
    duplicates = {p for p in paths if paths.count(p) > 1}
    if not duplicates:
        return []
    return [
        ValidationIssue(
            "error",
            "code_files/datasets",
            f"duplicate file paths: {sorted(duplicates)}",
        )
    ]


def _validate_model(spec: TaskSpec) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    if not spec.model:
        return issues
    profile = MODEL_CATALOG.get(spec.model)
    if profile is None:
        issues.append(
            ValidationIssue(
                "error",
                "model",
                f"unknown model {spec.model!r}; known: {sorted(MODEL_CATALOG)}",
            )
        )
        return issues
    if spec.resources.memory_gb_per_gpu < profile.batch_memory_gb:
        issues.append(
            ValidationIssue(
                "warning",
                "resources.memory_gb_per_gpu",
                f"{spec.resources.memory_gb_per_gpu:.0f} GB/GPU is below the "
                f"~{profile.batch_memory_gb:.0f} GB working set of {spec.model}; "
                "the task may OOM",
            )
        )
    return issues


def _validate_against_cluster(spec: TaskSpec, cluster: Cluster) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    resources = spec.resources
    if resources.gpu_type is not None:
        matching = cluster.nodes_of_type(resources.gpu_type)
        if not matching:
            census = sorted(cluster.gpu_census())
            issues.append(
                ValidationIssue(
                    "error",
                    "resources.gpu_type",
                    f"cluster {cluster.name!r} has no {resources.gpu_type!r} nodes; "
                    f"available types: {census}",
                )
            )
            return issues

    chunk = min(resources.num_gpus, resources.gpus_per_node or resources.num_gpus)
    hosts = [
        node
        for node in cluster.nodes.values()
        if (resources.gpu_type is None or node.spec.gpu_type == resources.gpu_type)
        and node.spec.num_gpus >= chunk
        and node.spec.cpus >= resources.cpus_per_gpu * chunk
        and node.spec.memory_gb >= resources.memory_gb_per_gpu * chunk
    ]
    chunks_needed = max(1, resources.num_gpus // chunk)
    if len(hosts) < chunks_needed:
        issues.append(
            ValidationIssue(
                "error",
                "resources",
                f"request needs {chunks_needed} node(s) hosting {chunk} GPUs "
                f"(+{resources.cpus_per_gpu * chunk} CPUs, "
                f"{resources.memory_gb_per_gpu * chunk:.0f} GB each); cluster "
                f"{cluster.name!r} has only {len(hosts)} such node(s)",
            )
        )

    chunks = max(1, resources.num_gpus // chunk)
    if chunks > 1 and not resources.rdma:
        issues.append(
            ValidationIssue(
                "warning",
                "resources.rdma",
                "multi-node job without rdma: true — gradient sync will run "
                "over TCP and cross-node scaling will suffer; the RDMA "
                "fabric is free to request",
            )
        )

    if resources.partition is not None and len(cluster.partitions) > 0:
        partition = cluster.partitions.get(resources.partition)  # raises ConfigError
        reason = partition.rejection_reason(
            resources.num_gpus, resources.walltime_hours, spec.qos.tier
        )
        if reason is not None:
            issues.append(ValidationIssue("error", "resources.partition", reason))
    return issues
