"""The Task Schema Layer: self-contained, validated task descriptions.

Every task submitted to the cluster is described by a :class:`TaskSpec` —
the first layer of the 4-layer workflow abstraction.  The schema is
*self-contained*: it names the code, data, dependencies, environment,
resources and QoS of the task, so the same spec reproduces the same
execution on any cluster instance, and specs can be shared between
researchers as artifacts.

Specs are plain frozen dataclasses with strict validation and a canonical
``fingerprint()`` (SHA-256 over the canonical JSON form) that the compiler
and execution layers use as cache keys.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field

from ..errors import SchemaError
from ..workload.job import JobTier, ResourceRequest

_NAME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9._-]{0,63}$")
_SHA256_RE = re.compile(r"^[0-9a-f]{64}$")


@dataclass(frozen=True)
class FileSpec:
    """One file the task ships (code) or mounts (dataset)."""

    path: str
    size_bytes: int
    sha256: str

    def __post_init__(self) -> None:
        if not self.path or self.path.startswith("/"):
            raise SchemaError(f"file path must be relative and non-empty: {self.path!r}")
        if ".." in self.path.split("/"):
            raise SchemaError(f"file path may not contain '..': {self.path!r}")
        if self.size_bytes < 0:
            raise SchemaError(f"file {self.path}: negative size")
        if not _SHA256_RE.match(self.sha256):
            raise SchemaError(f"file {self.path}: sha256 must be 64 hex chars")

    @classmethod
    def of_bytes(cls, path: str, data: bytes) -> "FileSpec":
        return cls(path=path, size_bytes=len(data), sha256=hashlib.sha256(data).hexdigest())


@dataclass(frozen=True)
class EnvironmentSpec:
    """Runtime environment: base image plus dependency pins.

    An empty ``image`` means bare-metal provisioning with only
    ``pip_packages`` installed into a fresh virtualenv.
    """

    image: str = ""
    python_version: str = "3.10"
    pip_packages: tuple[str, ...] = ()
    env_vars: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not re.match(r"^\d+\.\d+$", self.python_version):
            raise SchemaError(
                f"python_version must look like '3.10', got {self.python_version!r}"
            )
        for package in self.pip_packages:
            if not package or " " in package:
                raise SchemaError(f"malformed pip package spec: {package!r}")
        for key in self.env_vars:
            if not re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", key):
                raise SchemaError(f"malformed environment variable name: {key!r}")

    def fingerprint(self) -> str:
        """Stable hash of the environment, the warm-cache key downstream."""
        canonical = json.dumps(
            {
                "image": self.image,
                "python": self.python_version,
                "pip": sorted(self.pip_packages),
                "env": dict(sorted(self.env_vars.items())),
            },
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class ResourceSpec:
    """Compute, network and QoS-adjacent resource asks."""

    num_gpus: int = 1
    gpus_per_node: int | None = None
    gpu_type: str | None = None
    cpus_per_gpu: int = 4
    memory_gb_per_gpu: float = 32.0
    walltime_hours: float = 24.0
    partition: str | None = None
    rdma: bool = False

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise SchemaError(f"num_gpus must be positive, got {self.num_gpus}")
        if self.gpus_per_node is not None and self.gpus_per_node <= 0:
            raise SchemaError("gpus_per_node must be positive when given")
        if (
            self.gpus_per_node is not None
            and self.num_gpus > self.gpus_per_node
            and self.num_gpus % self.gpus_per_node
        ):
            raise SchemaError(
                f"num_gpus={self.num_gpus} not a multiple of gpus_per_node={self.gpus_per_node}"
            )
        if self.cpus_per_gpu < 0 or self.memory_gb_per_gpu < 0:
            raise SchemaError("per-GPU cpu/memory must be non-negative")
        if self.walltime_hours <= 0:
            raise SchemaError(f"walltime_hours must be positive, got {self.walltime_hours}")

    def to_request(self) -> ResourceRequest:
        """Convert to the scheduler-facing :class:`ResourceRequest`."""
        return ResourceRequest(
            num_gpus=self.num_gpus,
            gpus_per_node=self.gpus_per_node,
            gpu_type=self.gpu_type,
            cpus_per_gpu=self.cpus_per_gpu,
            memory_gb_per_gpu=self.memory_gb_per_gpu,
        )


@dataclass(frozen=True)
class QosSpec:
    """Access tier and preemption consent."""

    tier: str = "guaranteed"
    preemptible: bool | None = None

    def __post_init__(self) -> None:
        try:
            JobTier(self.tier)
        except ValueError:
            valid = [t.value for t in JobTier]
            raise SchemaError(f"unknown tier {self.tier!r}; valid tiers: {valid}") from None

    @property
    def job_tier(self) -> JobTier:
        return JobTier(self.tier)


@dataclass(frozen=True)
class TaskSpec:
    """A complete, self-contained task description.

    Attributes:
        name: Task name (also the default experiment label).
        entrypoint: Command executed on every node (placeholders
            ``{rank}``/``{nnodes}``/``{master}`` are filled by the compiler
            for distributed launches).
        code_files: Source files shipped with the task.
        datasets: Input data mounted from the shared filesystem.
        environment: Runtime environment description.
        resources: Hardware ask.
        qos: Tier/preemption.
        model: Optional DNN profile name for performance modelling.
        runtime: Preferred execution-layer runtime, or None to let the
            compiler decide from static characteristics.
        cluster: Target cluster profile name (tcloud multi-cluster).
    """

    name: str
    entrypoint: str
    code_files: tuple[FileSpec, ...] = ()
    datasets: tuple[FileSpec, ...] = ()
    environment: EnvironmentSpec = EnvironmentSpec()
    resources: ResourceSpec = ResourceSpec()
    qos: QosSpec = QosSpec()
    model: str = ""
    runtime: str | None = None
    cluster: str | None = None

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SchemaError(
                f"task name {self.name!r} must match {_NAME_RE.pattern}"
            )
        if not self.entrypoint.strip():
            raise SchemaError("entrypoint must be a non-empty command")
        paths = [f.path for f in self.code_files + self.datasets]
        duplicates = {p for p in paths if paths.count(p) > 1}
        if duplicates:
            raise SchemaError(f"duplicate file paths in spec: {sorted(duplicates)}")

    @property
    def total_input_bytes(self) -> int:
        return sum(f.size_bytes for f in self.code_files + self.datasets)

    @property
    def multi_node(self) -> bool:
        per_node = self.resources.gpus_per_node or self.resources.num_gpus
        return self.resources.num_gpus > per_node

    def to_dict(self) -> dict:
        data = asdict(self)
        data["environment"]["env_vars"] = dict(self.environment.env_vars)
        return data

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form — the task's identity."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, default=list)
        return hashlib.sha256(canonical.encode()).hexdigest()
