"""Learned duration prediction and prediction-driven SJF.

The scheduling layer's design leaves room for "learning-based methods"
that use runtime history instead of user-provided wall-time limits.  This
module implements the classic, deployable instance of that idea
(Tsafrir-style system-generated predictions):

* :class:`DurationPredictor` keeps an online per-(user, width-class)
  history of *observed* runtimes and predicts the next job's runtime as a
  quantile of its owner's recent history, falling back to per-user, then
  global history, then the user's estimate when no history exists.  An
  inflation factor keeps predictions conservative — under-prediction is
  what hurts SJF-style policies.
* :class:`PredictedSjfScheduler` is SJF ordered by those predictions,
  learning online: every finished job's true runtime is fed back.

The A5 ablation compares estimate-driven SJF, prediction-driven SJF, and
the oracle — reproducing the standard result that a crude predictor
recovers most of the oracle gap because users' estimates are the worst
signal available.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..config import require_positive
from ..workload.job import Job
from .base import OrderedQueueScheduler
from .placement.base import PlacementPolicy


def _width_class(num_gpus: int) -> int:
    """Bucket widths into 1 / 2-4 / 5-8 / 9+ classes."""
    if num_gpus == 1:
        return 1
    if num_gpus <= 4:
        return 2
    if num_gpus <= 8:
        return 3
    return 4


@dataclass
class DurationPredictor:
    """Online quantile predictor over observed runtimes.

    Attributes:
        window: History length per key (older observations roll off, so
            the predictor tracks behaviour drift).
        quantile: Prediction point of the history distribution.
        inflation: Multiplier on the predicted quantile (conservatism).
        min_history: Observations required before a key is trusted.
    """

    window: int = 32
    quantile: float = 0.65
    inflation: float = 1.25
    min_history: int = 3
    _by_user_class: dict[tuple[str, int], deque] = field(default_factory=dict)
    _by_user: dict[str, deque] = field(default_factory=dict)
    _global: deque = field(default_factory=deque)
    observations: int = 0

    def __post_init__(self) -> None:
        require_positive("window", self.window)
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {self.quantile}")
        if self.inflation < 1.0:
            raise ValueError("inflation must be >= 1")

    def observe(self, job: Job, runtime_s: float) -> None:
        """Record a finished job's observed runtime."""
        if runtime_s <= 0:
            return
        key = (job.user_id, _width_class(job.num_gpus))
        for history in (
            self._by_user_class.setdefault(key, deque(maxlen=self.window)),
            self._by_user.setdefault(job.user_id, deque(maxlen=self.window)),
            self._global,
        ):
            history.append(runtime_s)
        while len(self._global) > self.window * 8:
            self._global.popleft()
        self.observations += 1

    def _quantile_of(self, history) -> float:
        return float(np.quantile(np.asarray(history), self.quantile)) * self.inflation

    def predict(self, job: Job) -> float:
        """Predicted runtime in seconds (falls back to the user estimate)."""
        key = (job.user_id, _width_class(job.num_gpus))
        for history in (self._by_user_class.get(key), self._by_user.get(job.user_id)):
            if history is not None and len(history) >= self.min_history:
                return self._quantile_of(history)
        if len(self._global) >= self.min_history * 4:
            return self._quantile_of(self._global)
        return job.walltime_estimate or job.duration

    def confidence(self, job: Job) -> str:
        """Which signal the prediction for *job* would come from."""
        key = (job.user_id, _width_class(job.num_gpus))
        if len(self._by_user_class.get(key, ())) >= self.min_history:
            return "user-class"
        if len(self._by_user.get(job.user_id, ())) >= self.min_history:
            return "user"
        if len(self._global) >= self.min_history * 4:
            return "global"
        return "estimate"


class PredictedSjfScheduler(OrderedQueueScheduler):
    """SJF ordered by learned runtime predictions, trained online."""

    name = "sjf-predicted"
    blocking = False

    def __init__(
        self,
        placement: PlacementPolicy | None = None,
        predictor: DurationPredictor | None = None,
    ) -> None:
        super().__init__(placement)
        self.predictor = predictor or DurationPredictor()

    def sort_key(self, job: Job, now: float):
        return self.predictor.predict(job)

    def on_finish(self, job: Job, now: float) -> None:
        if job.first_start_time is not None and job.end_time is not None:
            # Observed runtime = cumulative wall time actually spent
            # running (gpu-seconds over width), which is exact even when
            # the job was preempted and re-queued in between.
            runtime = job.gpu_seconds_used / max(1, job.num_gpus)
            self.predictor.observe(job, runtime)
