"""Scheduler framework: the contract between policies and the simulator.

A scheduler owns the pending queue and, on every scheduling pass, decides
which queued jobs to start (and, for preemptive policies, which running jobs
to evict).  It acts through the :class:`ScheduleContext` the simulator
passes in: ``ctx.start_job`` / ``ctx.preempt_job`` mutate the cluster
immediately, so the policy always sees up-to-date free capacity as its pass
progresses.  Policies never touch the cluster directly.

:class:`OrderedQueueScheduler` implements the common skeleton — order the
queue, walk it, place greedily — from which FIFO, SJF, and fair-share derive
by overriding :meth:`~OrderedQueueScheduler.sort_key`.  ``blocking=True``
gives strict head-of-line semantics (nothing may overtake an unplaceable
head job); ``blocking=False`` lets later jobs skip over it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..cluster.cluster import Cluster
from ..errors import SchedulingError
from ..ids import JobId, NodeId
from ..workload.job import Job, JobState
from .placement.base import PlacementPolicy
from .placement.first_fit import FirstFitPlacement


@dataclass
class ScheduleContext:
    """One scheduling pass's view of the world.

    Attributes:
        now: Simulation time of the pass.
        cluster: Live cluster state (read for capacity; mutate only through
            the callbacks below).
        running: Currently running jobs by id.
        start_job: Callback that starts a queued job on a placement —
            allocates resources, computes slowdown, schedules its finish.
        preempt_job: Callback that gracefully preempts a running job —
            checkpoints, frees resources, and requeues it.
    """

    now: float
    cluster: Cluster
    running: Mapping[JobId, Job]
    start_job: Callable[[Job, dict[NodeId, int]], None]
    preempt_job: Callable[[Job], None]


class Scheduler(abc.ABC):
    """Base class for scheduling policies."""

    name: str = "abstract"

    def __init__(self, placement: PlacementPolicy | None = None) -> None:
        self.placement = placement or FirstFitPlacement()
        self._queue: dict[JobId, Job] = {}
        # Blocked-verdict cache: job id -> relax epoch at which placement
        # last failed.  Feasibility is monotone between capacity-increasing
        # events (allocations/failures only shrink the fit set; only frees
        # and repairs can flip "no placement" to "placement", and those tick
        # ``ClusterIndex.relax_epoch``), so while the epoch is unchanged the
        # failure verdict is still exact and the placement policy need not
        # be consulted.  This is what turns an O(queue x nodes) retry storm
        # on a congested cluster into O(queue) dictionary lookups.
        self._blocked_at_epoch: dict[JobId, int] = {}
        self._blocked_index: object | None = None

    # -- queue management (called by the simulator) ----------------------------

    @property
    def queue(self) -> tuple[Job, ...]:
        """Pending jobs in insertion order."""
        return tuple(self._queue.values())

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def enqueue(self, job: Job, now: float) -> None:
        """Admit a job to the pending queue (arrival or post-preemption)."""
        if job.state is not JobState.QUEUED:
            raise SchedulingError(
                f"cannot enqueue job {job.job_id} in state {job.state.value}"
            )
        if job.job_id in self._queue:
            raise SchedulingError(f"job {job.job_id} is already queued")
        self._queue[job.job_id] = job
        self.on_enqueue(job, now)

    def remove(self, job_id: JobId) -> Job | None:
        """Drop a job from the queue (kill before start); None if absent."""
        self._blocked_at_epoch.pop(job_id, None)
        return self._queue.pop(job_id, None)

    def notify_start(self, job: Job, now: float) -> None:
        """Simulator notification: *job* left the queue and started."""
        self._queue.pop(job.job_id, None)
        self._blocked_at_epoch.pop(job.job_id, None)
        self.on_start(job, now)

    def notify_finish(self, job: Job, now: float) -> None:
        """Simulator notification: *job* reached a terminal state."""
        self._blocked_at_epoch.pop(job.job_id, None)
        self.on_finish(job, now)

    # -- policy hooks ------------------------------------------------------------

    def on_enqueue(self, job: Job, now: float) -> None:
        """Hook for subclasses (accounting, aging)."""

    def on_start(self, job: Job, now: float) -> None:
        """Hook for subclasses."""

    def on_finish(self, job: Job, now: float) -> None:
        """Hook for subclasses (usage accounting)."""

    def tick_interval(self) -> float | None:
        """Period of unconditional scheduler wake-ups, or ``None``.

        Time-slicing and aging policies (gang, Tiresias) need to act even
        when no arrival/finish occurs; they return a positive period here.
        """
        return None

    def is_preemptible(self, job: Job) -> bool:
        """Whether the policy may evict *job* right now.

        The default is the job's own (tier-derived) consent.  Policies
        that grant *conditional* placements — quota borrowing, where a
        guaranteed job runs on idle capacity only until an entitled job
        wants it back — override this instead of mutating
        ``job.preemptible``: eviction consent is policy state, and the
        control plane consults the policy when validating a preemption.
        """
        return bool(job.preemptible)

    @abc.abstractmethod
    def schedule(self, ctx: ScheduleContext) -> None:
        """Run one scheduling pass using the context callbacks."""

    # -- shared helpers ------------------------------------------------------------

    def try_place(self, ctx: ScheduleContext, job: Job) -> dict[NodeId, int] | None:
        """Ask the placement policy for a placement of *job* right now.

        Failures are cached against the cluster index's relax epoch: until
        capacity that could serve this job *increases* (a free or repair on
        an eligible GPU type), the failure verdict is provably still exact,
        so the placement policy is skipped entirely.  Returning the cached
        ``None`` is byte-indistinguishable from re-running the scan, which
        is what keeps golden summaries identical while collapsing
        ``nodes_examined`` on congested clusters.
        """
        index = ctx.cluster.index
        if index is not self._blocked_index:
            # New cluster behind the same scheduler object (fresh run or a
            # snapshot/fork): cached epochs are meaningless there.
            self._blocked_index = index
            self._blocked_at_epoch.clear()
        perf = index.perf
        perf.placement_attempts += 1
        epoch = index.relax_epoch(job.request.gpu_type)
        if self._blocked_at_epoch.get(job.job_id) == epoch:
            perf.blocked_cache_hits += 1
            return None
        placement = self.placement.place_job(ctx.cluster, job)
        if placement is None:
            self._blocked_at_epoch[job.job_id] = epoch
        else:
            self._blocked_at_epoch.pop(job.job_id, None)
        return placement

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} queued={len(self._queue)}>"


class OrderedQueueScheduler(Scheduler):
    """Skeleton for non-preemptive, priority-ordered greedy schedulers.

    Subclasses provide :meth:`sort_key`; lower keys schedule first.
    """

    #: Strict head-of-line blocking (True = no job may overtake a stuck head).
    blocking: bool = False
    #: Greedy pass budget: stop scanning after this many consecutive
    #: placement failures.  Bounds pass cost when the queue is thousands
    #: deep under overload; generous enough that in practice only
    #: hopeless tails are skipped.
    max_consecutive_failures: int = 200

    def sort_key(self, job: Job, now: float):
        """Return the ordering key for *job* (lower = earlier). Ties are
        broken by (submit_time, job_id) appended by :meth:`ordered_queue`."""
        raise NotImplementedError

    def ordered_queue(self, now: float) -> list[Job]:
        return sorted(
            self._queue.values(),
            key=lambda job: (self.sort_key(job, now), job.submit_time, job.job_id),
        )

    def schedule(self, ctx: ScheduleContext) -> None:
        consecutive_failures = 0
        for job in self.ordered_queue(ctx.now):
            placement = self.try_place(ctx, job)
            if placement is not None:
                ctx.start_job(job, placement)
                consecutive_failures = 0
            elif self.blocking:
                break
            else:
                consecutive_failures += 1
                if consecutive_failures >= self.max_consecutive_failures:
                    break


def drain_order(jobs: Iterable[Job]) -> list[Job]:
    """Deterministic ordering helper used by preemptive policies when
    choosing eviction victims: latest-submitted, smallest jobs first (cheap
    to restart), id as final tiebreak."""
    return sorted(
        jobs,
        key=lambda job: (-job.submit_time, job.num_gpus, job.job_id),
    )


def eligible_victims(ctx: ScheduleContext, job: Job, candidates: Iterable[Job]) -> list[Job]:
    """Filter eviction *candidates* to those holding GPUs *job* could use.

    Evicting a victim on the wrong GPU type (or outside the job's
    partition) frees nothing the waiting job can take — pure churn — so
    preemptive policies restrict their victim pool to runs that overlap
    the job's eligible node set.
    """
    request = job.request
    victims = []
    for candidate in candidates:
        nodes = candidate.current_nodes
        if not nodes:
            continue
        for node_id in nodes:
            node = ctx.cluster.node(node_id)
            if request.gpu_type is not None and node.spec.gpu_type != request.gpu_type:
                continue
            if request.allowed_nodes is not None and node_id not in request.allowed_nodes:
                continue
            victims.append(candidate)
            break
    return victims
