"""Shortest-job-first scheduling on *user-estimated* runtimes.

Like the real cluster's scheduler, SJF here only sees the wall-time
estimate users attach at submission (systematically inflated — the trace
synthesizer models a 2–3× log-normal overestimate), never the true
duration.  The gap between SJF-on-estimates and SJF-on-truth (the oracle
variant, used in ablations) quantifies how much estimate quality matters.
"""

from __future__ import annotations

from ..workload.job import Job
from .base import OrderedQueueScheduler


class SjfScheduler(OrderedQueueScheduler):
    """Shortest estimated wall time first, non-blocking."""

    name = "sjf"
    blocking = False

    def sort_key(self, job: Job, now: float):
        return job.walltime_estimate


class SjfOracleScheduler(OrderedQueueScheduler):
    """SJF with oracle knowledge of true remaining work (upper bound)."""

    name = "sjf-oracle"
    blocking = False

    def sort_key(self, job: Job, now: float):
        return job.remaining_work


class LargestJobFirstScheduler(OrderedQueueScheduler):
    """Widest job first — packs big jobs before fragmentation sets in.

    Used in the placement experiments as a stress generator, not as a
    recommended policy.
    """

    name = "ljf"
    blocking = False

    def sort_key(self, job: Job, now: float):
        return -job.num_gpus


class SrtfScheduler(OrderedQueueScheduler):
    """Preemptive shortest-remaining-time-first (oracle).

    The classic mean-JCT-optimal single-machine discipline adapted to
    gangs: a queued job with less remaining work may evict preemptible
    running jobs with more.  Eviction is attempted only when the total
    evictable-longer capacity could actually host the queued job, and
    stops at the first placement success, so the policy converges instead
    of thrashing.  Uses true remaining work (oracle) — it is the JCT
    upper-bound baseline, not a deployable policy.
    """

    name = "srtf"
    blocking = False

    def sort_key(self, job: Job, now: float):
        return job.remaining_work

    def schedule(self, ctx) -> None:
        from .base import drain_order, eligible_victims

        super().schedule(ctx)  # plain greedy pass first
        for job in self.ordered_queue(ctx.now):
            if job.state.value != "queued":
                continue
            candidates = [
                running
                for running in ctx.running.values()
                if running.preemptible
                and running.remaining_work_at(ctx.now) > job.remaining_work
            ]
            victims = eligible_victims(ctx, job, candidates)
            if sum(v.num_gpus for v in victims) + ctx.cluster.free_gpus < job.num_gpus:
                continue
            for victim in drain_order(victims):
                ctx.preempt_job(victim)
                placement = self.try_place(ctx, job)
                if placement is not None:
                    ctx.start_job(job, placement)
                    break
