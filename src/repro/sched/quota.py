"""Tiered-quota preemptive scheduling — the campus cluster's own policy.

The cluster sells *guaranteed* quota to labs (grant-funded GPU counts) and
gives everything idle away as a *free tier*:

* a **guaranteed-tier** job whose lab still has quota headroom is
  *entitled*: it schedules ahead of everything else and, when the cluster
  is full, reclaims GPUs by preempting free-tier jobs;
* a guaranteed job beyond its lab's quota may **borrow** idle capacity,
  but runs at free-tier priority and is marked preemptible for the
  borrowed run;
* **opportunistic** (free-tier) jobs soak up idle GPUs and absorb all
  preemptions.

This gives labs near-dedicated latency on what they paid for while keeping
cluster utilization high — the F7 experiment shows guaranteed-tier waits
stay near zero while opportunistic jobs trade wait/preemption churn for
free capacity.

Quota accounting charges a lab only for its *entitled* running GPUs;
borrowed runs never consume quota.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import QuotaError
from ..ids import JobId, LabId
from ..workload.job import Job, JobState, JobTier
from .base import ScheduleContext, Scheduler, drain_order
from .placement.base import PlacementPolicy


@dataclass(frozen=True)
class QuotaConfig:
    """Per-lab guaranteed GPU quotas.

    Attributes:
        quotas: Guaranteed GPUs per lab.  Labs absent from the map have
            zero quota (all their guaranteed jobs borrow).
        allow_borrowing: Whether over-quota guaranteed jobs may run on idle
            capacity at free-tier priority.
        max_preemptions_per_pass: Eviction budget of one scheduling pass,
            bounding preemption storms.
    """

    quotas: dict[LabId, int] = field(default_factory=dict)
    allow_borrowing: bool = True
    max_preemptions_per_pass: int = 64

    def __post_init__(self) -> None:
        for lab, quota in self.quotas.items():
            if quota < 0:
                raise QuotaError(f"negative quota for lab {lab}: {quota}")
        if self.max_preemptions_per_pass < 0:
            raise QuotaError("max_preemptions_per_pass must be >= 0")

    @classmethod
    def equal_shares(
        cls, labs: list[LabId] | tuple[LabId, ...], total_gpus: int, fraction: float = 0.6
    ) -> "QuotaConfig":
        """Split ``fraction`` of the cluster evenly across *labs*."""
        if not labs:
            raise QuotaError("equal_shares needs at least one lab")
        if not 0.0 < fraction <= 1.0:
            raise QuotaError(f"fraction must be in (0, 1], got {fraction}")
        per_lab = int(total_gpus * fraction / len(labs))
        return cls(quotas={lab: per_lab for lab in sorted(labs)})


class TieredQuotaScheduler(Scheduler):
    """Guaranteed/opportunistic two-tier scheduling with quota reclaim."""

    name = "tiered-quota"

    def __init__(
        self,
        quota: QuotaConfig,
        placement: PlacementPolicy | None = None,
    ) -> None:
        super().__init__(placement)
        self.quota = quota
        #: Running jobs charged against their lab's quota.
        self._charged: dict[JobId, LabId] = {}
        #: Guaranteed jobs currently running as borrowers (evictable via
        #: :meth:`is_preemptible` while they hold borrowed capacity).
        self._borrowed: set[JobId] = set()

    # -- accounting ----------------------------------------------------------------

    def charged_gpus(self, lab: LabId, ctx: ScheduleContext) -> int:
        """GPUs of *lab* currently charged against its quota."""
        return sum(
            ctx.running[job_id].num_gpus
            for job_id, charged_lab in self._charged.items()
            if charged_lab == lab and job_id in ctx.running
        )

    def quota_of(self, lab: LabId) -> int:
        return self.quota.quotas.get(lab, 0)

    def is_entitled(self, job: Job, ctx: ScheduleContext) -> bool:
        """Would starting *job* keep its lab within quota?"""
        if job.tier is not JobTier.GUARANTEED:
            return False
        headroom = self.quota_of(job.lab_id) - self.charged_gpus(job.lab_id, ctx)
        return job.num_gpus <= headroom

    def on_finish(self, job: Job, now: float) -> None:
        self._charged.pop(job.job_id, None)
        self._borrowed.discard(job.job_id)

    def on_enqueue(self, job: Job, now: float) -> None:
        # A preempted borrower returns to the queue; it may be entitled next
        # time (quota may have freed), so clear its borrowed status.
        self._charged.pop(job.job_id, None)
        self._borrowed.discard(job.job_id)

    def is_preemptible(self, job: Job) -> bool:
        """Borrowed runs consent to eviction regardless of the job's tier.

        Borrowing is scheduler state (``_borrowed``), not a property of the
        job — mutating ``job.preemptible`` here would bypass the control
        plane and leak policy state into the workload model.
        """
        return bool(job.preemptible) or job.job_id in self._borrowed

    # -- scheduling -------------------------------------------------------------------

    def schedule(self, ctx: ScheduleContext) -> None:
        preemption_budget = self.quota.max_preemptions_per_pass

        entitled = [job for job in self.queue if self.is_entitled(job, ctx)]
        entitled.sort(key=lambda job: (job.submit_time, job.job_id))
        for job in entitled:
            if job.state is not JobState.QUEUED:
                continue
            if not self.is_entitled(job, ctx):
                continue  # an earlier start in this pass consumed the headroom
            placement = self.try_place(ctx, job)
            if placement is None and preemption_budget > 0:
                placement, evicted = self._reclaim(ctx, job, preemption_budget)
                preemption_budget -= evicted
            if placement is not None:
                self._charged[job.job_id] = job.lab_id
                ctx.start_job(job, placement)

        # Free tier: opportunistic jobs plus over-quota guaranteed borrowers.
        best_effort = [
            job
            for job in self.queue
            if job.state is JobState.QUEUED and not self.is_entitled(job, ctx)
        ]
        best_effort.sort(key=lambda job: (job.submit_time, job.job_id))
        for job in best_effort:
            if job.tier is JobTier.GUARANTEED and not self.quota.allow_borrowing:
                continue  # must wait for quota headroom
            placement = self.try_place(ctx, job)
            if placement is None:
                continue
            if job.tier is JobTier.GUARANTEED:
                # Borrowed run: counts nothing against quota, but is
                # evictable the moment an entitled job needs the GPUs.
                self._borrowed.add(job.job_id)
            ctx.start_job(job, placement)

    def _reclaim(
        self, ctx: ScheduleContext, job: Job, budget: int
    ) -> tuple[dict | None, int]:
        """Evict free-tier jobs until *job* places; returns (placement, evicted).

        Victims are preemptible running jobs not charged to any quota —
        opportunistic jobs and borrowers — taken in :func:`drain_order`
        (latest-submitted, narrowest first) from nodes the entitled job
        could actually use.
        """
        gpu_type = job.request.gpu_type
        victims = []
        for running in ctx.running.values():
            if not self.is_preemptible(running) or running.job_id in self._charged:
                continue
            if gpu_type is not None:
                on_eligible = any(
                    ctx.cluster.node(n).spec.gpu_type == gpu_type
                    for n in running.current_nodes
                )
                if not on_eligible:
                    continue
            victims.append(running)
        if sum(v.num_gpus for v in victims) + ctx.cluster.free_gpus < job.num_gpus:
            return None, 0  # reclaim cannot possibly succeed; don't churn
        evicted = 0
        for victim in drain_order(victims):
            if evicted >= budget:
                break
            ctx.preempt_job(victim)
            evicted += 1
            placement = self.try_place(ctx, job)
            if placement is not None:
                return placement, evicted
        return None, evicted
