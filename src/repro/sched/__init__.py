"""Scheduling policies and placement strategies."""

from __future__ import annotations

from ..errors import ConfigError
from .backfill import ConservativeBackfillScheduler, EasyBackfillScheduler
from .base import OrderedQueueScheduler, ScheduleContext, Scheduler, drain_order
from .drf import DrfScheduler
from .elastic import ElasticScheduler, grant_candidates
from .fair import FairShareScheduler
from .fifo import FifoScheduler, GreedyFifoScheduler
from .gang import GangScheduler
from .placement import (
    PLACEMENT_POLICIES,
    BestFitPlacement,
    BuddyCellPlacement,
    FirstFitPlacement,
    PlacementPolicy,
    TopologyAwarePlacement,
    WorstFitPlacement,
    make_placement,
)
from .predictor import DurationPredictor, PredictedSjfScheduler
from .priority import MultifactorPriority, PriorityWeights, UsageTracker
from .quota import QuotaConfig, TieredQuotaScheduler
from .sjf import LargestJobFirstScheduler, SjfOracleScheduler, SjfScheduler, SrtfScheduler
from .tiresias import TiresiasScheduler

#: Schedulers constructible with no mandatory arguments.
SCHEDULERS = {
    "fifo": FifoScheduler,
    "fifo-greedy": GreedyFifoScheduler,
    "sjf": SjfScheduler,
    "sjf-oracle": SjfOracleScheduler,
    "srtf": SrtfScheduler,
    "sjf-predicted": PredictedSjfScheduler,
    "ljf": LargestJobFirstScheduler,
    "fair-share": FairShareScheduler,
    "drf": DrfScheduler,
    "elastic": ElasticScheduler,
    "backfill-easy": EasyBackfillScheduler,
    "backfill-conservative": ConservativeBackfillScheduler,
    "gang": GangScheduler,
    "tiresias": TiresiasScheduler,
}


def make_scheduler(
    name: str,
    placement: PlacementPolicy | str | None = None,
    **kwargs,
) -> Scheduler:
    """Instantiate a scheduler by registry name.

    ``tiered-quota`` requires a ``quota=QuotaConfig(...)`` keyword; all
    other registry entries construct with defaults.
    """
    if isinstance(placement, str):
        placement = make_placement(placement)
    if name == "tiered-quota":
        if "quota" not in kwargs:
            raise ConfigError("tiered-quota requires a quota=QuotaConfig(...) argument")
        return TieredQuotaScheduler(placement=placement, **kwargs)
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        known = sorted(SCHEDULERS) + ["tiered-quota"]
        raise ConfigError(f"unknown scheduler {name!r}; known: {known}") from None
    return cls(placement=placement, **kwargs)


__all__ = [
    "PLACEMENT_POLICIES",
    "SCHEDULERS",
    "BestFitPlacement",
    "BuddyCellPlacement",
    "ConservativeBackfillScheduler",
    "DrfScheduler",
    "DurationPredictor",
    "ElasticScheduler",
    "EasyBackfillScheduler",
    "FairShareScheduler",
    "FifoScheduler",
    "FirstFitPlacement",
    "GangScheduler",
    "GreedyFifoScheduler",
    "LargestJobFirstScheduler",
    "MultifactorPriority",
    "OrderedQueueScheduler",
    "PlacementPolicy",
    "PredictedSjfScheduler",
    "PriorityWeights",
    "QuotaConfig",
    "ScheduleContext",
    "Scheduler",
    "SjfOracleScheduler",
    "SjfScheduler",
    "SrtfScheduler",
    "TieredQuotaScheduler",
    "TiresiasScheduler",
    "TopologyAwarePlacement",
    "UsageTracker",
    "WorstFitPlacement",
    "drain_order",
    "grant_candidates",
    "make_placement",
    "make_scheduler",
]
