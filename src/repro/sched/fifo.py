"""FIFO scheduling: strict and greedy variants.

Strict FIFO (``blocking=True``) is the classic head-of-line queue — nothing
may overtake a job that cannot start, so one wide job stalls the cluster
behind it (the motivation for backfill, F6).  Greedy FIFO lets later jobs
skip an unplaceable head, trading strict arrival-order fairness for
utilization; it is the "no reservation" end of the backfill ablation.
"""

from __future__ import annotations

from ..workload.job import Job
from .base import OrderedQueueScheduler


class FifoScheduler(OrderedQueueScheduler):
    """Strict first-in-first-out with head-of-line blocking."""

    name = "fifo"
    blocking = True

    def sort_key(self, job: Job, now: float):
        return job.submit_time


class GreedyFifoScheduler(FifoScheduler):
    """FIFO ordering, but later jobs may skip an unplaceable head."""

    name = "fifo-greedy"
    blocking = False
