"""Slurm-style multifactor priority: age, fair-share, size, QOS.

The campus cluster's Slurm backbone computes job priority as a weighted sum
of normalised factors.  This module reimplements the two pieces the
experiments need:

* :class:`UsageTracker` — per-entity (user or lab) GPU-second accounting
  with exponential half-life decay, as in Slurm's fair-share;
* :class:`MultifactorPriority` — the weighted sum with the standard
  factors: *age* (time in queue, saturating), *fair-share* (low recent
  usage ⇒ high factor), *job size* (small jobs slightly favoured, which
  suits the campus's interactive-heavy mix), and *QOS* (guaranteed tier
  outranks opportunistic).

Factors are each in [0, 1]; weights set their relative importance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..config import require_non_negative, require_positive
from ..workload.job import Job, JobTier


@dataclass
class UsageTracker:
    """Decayed GPU-second usage per accounting entity.

    Usage recorded at time *t* has weight ``2^-(now - t) / half_life`` when
    read at *now*.  Implemented by storing, per entity, a value that is
    lazily decayed on access — O(1) per update.
    """

    half_life_s: float = 7.0 * 86400.0
    _usage: dict[str, float] = field(default_factory=dict)
    _last_update: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_positive("half_life_s", self.half_life_s)

    def _decay(self, entity: str, now: float) -> None:
        last = self._last_update.get(entity)
        if last is None:
            self._usage.setdefault(entity, 0.0)
        elif now > last:
            factor = 2.0 ** (-(now - last) / self.half_life_s)
            self._usage[entity] *= factor
        self._last_update[entity] = max(now, last or 0.0)

    def add(self, entity: str, gpu_seconds: float, now: float) -> None:
        """Record *gpu_seconds* of usage for *entity* at time *now*."""
        require_non_negative("gpu_seconds", gpu_seconds)
        self._decay(entity, now)
        self._usage[entity] += gpu_seconds

    def usage(self, entity: str, now: float) -> float:
        """Decayed usage of *entity* at time *now* (0 for unknown)."""
        if entity not in self._usage:
            return 0.0
        self._decay(entity, now)
        return self._usage[entity]

    def total(self, now: float) -> float:
        return sum(self.usage(entity, now) for entity in list(self._usage))

    def entities(self) -> tuple[str, ...]:
        return tuple(sorted(self._usage))


@dataclass(frozen=True)
class PriorityWeights:
    """Relative importance of each multifactor component."""

    age: float = 1000.0
    fair_share: float = 5000.0
    job_size: float = 200.0
    qos: float = 2000.0
    #: Queue age at which the age factor saturates at 1.0.
    age_saturation_s: float = 3.0 * 86400.0

    def __post_init__(self) -> None:
        for name in ("age", "fair_share", "job_size", "qos"):
            require_non_negative(name, getattr(self, name))
        require_positive("age_saturation_s", self.age_saturation_s)


class MultifactorPriority:
    """Computes Slurm-style job priorities against a usage tracker."""

    def __init__(
        self,
        weights: PriorityWeights | None = None,
        usage: UsageTracker | None = None,
        max_job_gpus: int = 64,
    ) -> None:
        self.weights = weights or PriorityWeights()
        self.usage = usage or UsageTracker()
        self.max_job_gpus = max_job_gpus

    def age_factor(self, job: Job, now: float) -> float:
        waited = max(0.0, now - job.submit_time)
        return min(1.0, waited / self.weights.age_saturation_s)

    def fair_share_factor(self, job: Job, now: float) -> float:
        """2^-(usage / scale): 1.0 for idle users, → 0 for heavy users.

        The scale is the current mean usage across entities, so the factor
        adapts to overall cluster activity (as Slurm's shares do).
        """
        entity_usage = self.usage.usage(job.user_id, now)
        entities = self.usage.entities()
        mean_usage = self.usage.total(now) / len(entities) if entities else 0.0
        scale = max(mean_usage, 3600.0)  # floor: one GPU-hour
        return 2.0 ** (-entity_usage / scale)

    def size_factor(self, job: Job) -> float:
        """Small jobs get a mild boost (1.0 for 1 GPU, → 0 at the cap)."""
        span = max(1, self.max_job_gpus)
        return max(0.0, 1.0 - math.log2(max(1, job.num_gpus)) / math.log2(span * 2))

    def qos_factor(self, job: Job) -> float:
        return 1.0 if job.tier is JobTier.GUARANTEED else 0.0

    def priority(self, job: Job, now: float) -> float:
        """The weighted sum; higher schedules first."""
        w = self.weights
        return (
            w.age * self.age_factor(job, now)
            + w.fair_share * self.fair_share_factor(job, now)
            + w.job_size * self.size_factor(job)
            + w.qos * self.qos_factor(job)
        )
