"""Gang scheduling with time-slicing.

All tasks of a distributed job start together (gang semantics are already
enforced by atomic placements); this scheduler adds Slurm-style *time
slicing*: when demand exceeds capacity, running preemptible jobs yield the
cluster at quantum boundaries so queued jobs get a turn, approximating
round-robin over job *time* rather than making latecomers wait for whole
jobs to finish.  Interactive jobs feel this strongly — the F11 experiment
measures their wait with and without slicing.

Rotation rule at each quantum: if jobs are queued, running preemptible
jobs that have consumed at least a full quantum are preempted (oldest
running first); the queue is then served least-recently-run first.
"""

from __future__ import annotations

from ..config import require_positive
from ..workload.job import Job, JobState
from .base import ScheduleContext, Scheduler
from .placement.base import PlacementPolicy


class GangScheduler(Scheduler):
    """Gang scheduling with round-robin time slicing."""

    name = "gang"

    def __init__(
        self,
        placement: PlacementPolicy | None = None,
        quantum_s: float = 1800.0,
    ) -> None:
        super().__init__(placement)
        require_positive("quantum_s", quantum_s)
        self.quantum_s = quantum_s
        #: When each job last yielded the cluster (rotation fairness key).
        self._last_ran: dict[str, float] = {}

    def tick_interval(self) -> float | None:
        return self.quantum_s

    def on_finish(self, job: Job, now: float) -> None:
        self._last_ran.pop(job.job_id, None)

    def _rotation_key(self, job: Job):
        # Never-ran jobs first (at -inf), then least-recently-run.
        return (self._last_ran.get(job.job_id, float("-inf")), job.submit_time, job.job_id)

    def schedule(self, ctx: ScheduleContext) -> None:
        # Rotate out stale running jobs only when someone is waiting.
        if self.queue_depth > 0:
            expired = [
                job
                for job in ctx.running.values()
                if job.preemptible
                and job.last_start_time is not None
                and ctx.now - job.last_start_time >= self.quantum_s - 1e-9
            ]
            expired.sort(key=lambda job: (job.last_start_time or 0.0, job.job_id))
            for job in expired:
                self._last_ran[job.job_id] = ctx.now
                ctx.preempt_job(job)

        for job in sorted(self.queue, key=self._rotation_key):
            if job.state is not JobState.QUEUED:
                continue
            placement = self.try_place(ctx, job)
            if placement is not None:
                ctx.start_job(job, placement)
