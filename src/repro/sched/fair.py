"""Fair-share scheduling via the Slurm multifactor priority.

The production configuration of the campus cluster: queue order is the
multifactor priority (fair-share dominant, age second), recomputed each
pass against exponentially-decayed per-user GPU-second usage.  Usage is
accounted incrementally — on every job start/finish/preemption the delta of
``job.gpu_seconds_used`` since the last accounting is charged to the user —
so long-running jobs depress their owner's priority while they run, not
only at completion.
"""

from __future__ import annotations

from ..workload.job import Job
from .base import OrderedQueueScheduler, ScheduleContext
from .placement.base import PlacementPolicy
from .priority import MultifactorPriority, PriorityWeights, UsageTracker


class FairShareScheduler(OrderedQueueScheduler):
    """Multifactor-priority queue ordering with decayed usage accounting."""

    name = "fair-share"
    blocking = False

    def __init__(
        self,
        placement: PlacementPolicy | None = None,
        weights: PriorityWeights | None = None,
        usage_half_life_s: float = 7.0 * 86400.0,
    ) -> None:
        super().__init__(placement)
        self.usage = UsageTracker(half_life_s=usage_half_life_s)
        self.priority = MultifactorPriority(weights=weights, usage=self.usage)
        self._accounted: dict[str, float] = {}  # job_id -> gpu_seconds charged

    # -- accounting -------------------------------------------------------------

    def _charge(self, job: Job, now: float) -> None:
        previously = self._accounted.get(job.job_id, 0.0)
        delta = job.gpu_seconds_used - previously
        if delta > 0:
            self.usage.add(job.user_id, delta, now)
            self._accounted[job.job_id] = job.gpu_seconds_used

    def on_enqueue(self, job: Job, now: float) -> None:
        # Requeued (preempted) jobs carry partial usage; charge it now.
        self._charge(job, now)

    def on_finish(self, job: Job, now: float) -> None:
        self._charge(job, now)
        self._accounted.pop(job.job_id, None)

    def schedule(self, ctx: ScheduleContext) -> None:
        # Charge running jobs' accrued usage so priorities reflect the
        # present, then run the ordinary ordered pass.
        for job in ctx.running.values():
            if job.last_start_time is not None:
                elapsed = ctx.now - job.last_start_time
                live = elapsed * job.num_gpus
                booked = self._accounted.get(job.job_id, 0.0)
                total_booked = job.gpu_seconds_used + live
                if total_booked > booked:
                    self.usage.add(job.user_id, total_booked - booked, ctx.now)
                    self._accounted[job.job_id] = total_booked
        super().schedule(ctx)

    def sort_key(self, job: Job, now: float):
        return -self.priority.priority(job, now)
