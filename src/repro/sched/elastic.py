"""Elastic (Pollux-style) adaptive scheduling.

Pollux (OSDI'21) showed that letting the scheduler *resize* DL jobs —
rather than holding their GPU count fixed — raises cluster goodput: under
contention everyone runs a bit narrower instead of queueing, and idle
capacity is soaked up by widening whoever benefits.  This scheduler is the
trace-driven distillation of that idea on top of this repository's elastic
job model (``Job.elastic_min_gpus``):

* a queued elastic job is started at the **largest grant that fits right
  now**, halving from its full request down to its minimum;
* on a periodic tick, if jobs are queueing, the widest resizable running
  job is checkpointed and restarted (narrower, since capacity is scarce) —
  **shrink to admit**;
* conversely, when the queue is empty and GPUs idle, the narrowest
  under-granted job is restarted to reclaim its full width — **grow into
  idleness**.

Resizes go through the ordinary preempt/requeue path (checkpoint cost
applies), and a per-job cooldown prevents resize thrashing.  Rigid jobs
are scheduled FIFO alongside, untouched.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import require_positive
from ..ids import NodeId
from ..workload.job import Job, JobState
from .base import ScheduleContext, Scheduler
from .placement.base import PlacementPolicy


def grant_candidates(job: Job) -> list[int]:
    """Feasible grant sizes for *job*, widest first.

    Halves from the full request down to ``elastic_min_gpus`` (always
    included); multi-node jobs only get grants that keep whole per-node
    chunks.  Rigid jobs get exactly their request.
    """
    if not job.elastic:
        return [job.num_gpus]
    cap = job.request.gpus_per_node
    sizes: list[int] = []
    size = job.num_gpus
    while size > job.elastic_min_gpus:
        sizes.append(size)
        size //= 2
    sizes.append(job.elastic_min_gpus)
    if cap is not None:
        sizes = [s for s in sizes if s <= cap or s % cap == 0]
    return sizes


class ElasticScheduler(Scheduler):
    """FIFO with elastic shrink-to-admit / grow-into-idleness."""

    name = "elastic"

    def __init__(
        self,
        placement: PlacementPolicy | None = None,
        tick_s: float = 600.0,
        resize_cooldown_s: float = 1800.0,
        grow_free_fraction: float = 0.1,
    ) -> None:
        super().__init__(placement)
        require_positive("tick_s", tick_s)
        require_positive("resize_cooldown_s", resize_cooldown_s)
        self.tick_s = tick_s
        self.resize_cooldown_s = resize_cooldown_s
        self.grow_free_fraction = grow_free_fraction
        self._last_resize: dict[str, float] = {}

    def tick_interval(self) -> float | None:
        return self.tick_s

    def on_finish(self, job: Job, now: float) -> None:
        self._last_resize.pop(job.job_id, None)

    # -- placement at a grant size ------------------------------------------------

    def place_at_grant(
        self, ctx: ScheduleContext, job: Job, grant: int
    ) -> dict[NodeId, int] | None:
        cap = job.request.gpus_per_node
        shrunk = replace(
            job.request,
            num_gpus=grant,
            gpus_per_node=cap if cap is not None and grant > cap else None,
        )
        return self.placement.place(ctx.cluster, shrunk)

    def try_place_elastic(self, ctx: ScheduleContext, job: Job) -> dict[NodeId, int] | None:
        for grant in grant_candidates(job):
            placement = self.place_at_grant(ctx, job, grant)
            if placement is not None:
                return placement
        return None

    # -- resize decisions ------------------------------------------------------------

    def _resizable(self, ctx: ScheduleContext, now: float, shrinking: bool) -> list[Job]:
        candidates = []
        for job in ctx.running.values():
            if not (job.elastic and job.preemptible):
                continue
            if now - self._last_resize.get(job.job_id, -1e18) < self.resize_cooldown_s:
                continue
            if shrinking and job.current_gpus > job.elastic_min_gpus:
                candidates.append(job)
            elif not shrinking and job.current_gpus < job.num_gpus:
                candidates.append(job)
        return candidates

    def _admit(self, ctx: ScheduleContext) -> None:
        """Admit the queue FIFO, capping elastic grants to a fair share.

        When several jobs compete, an elastic job is granted at most
        ``free // competitors`` (never below its minimum) so one job cannot
        re-absorb everything another just yielded.
        """
        queued = sorted(self.queue, key=lambda j: (j.submit_time, j.job_id))
        for job in queued:
            if job.state is not JobState.QUEUED:
                continue
            competitors = sum(1 for j in queued if j.state is JobState.QUEUED)
            cap: int | None = None
            if job.elastic and competitors > 1:
                cap = max(job.elastic_min_gpus, ctx.cluster.free_gpus // competitors)
            for grant in grant_candidates(job):
                if cap is not None and grant > cap:
                    continue
                placement = self.place_at_grant(ctx, job, grant)
                if placement is not None:
                    ctx.start_job(job, placement)
                    break

    def schedule(self, ctx: ScheduleContext) -> None:
        # 1. Admit the queue, widest (fair) grant that fits, FIFO order.
        self._admit(ctx)

        still_queued = [job for job in self.queue if job.state is JobState.QUEUED]
        if still_queued:
            # 2. Shrink to admit: one resize per pass, widest grant first.
            candidates = self._resizable(ctx, ctx.now, shrinking=True)
            if candidates:
                victim = max(
                    candidates, key=lambda j: (j.current_gpus, -j.submit_time, j.job_id)
                )
                self._last_resize[victim.job_id] = ctx.now
                ctx.preempt_job(victim)
                # Re-admit immediately so the freed GPUs are shared between
                # the victim (narrower) and the queue this same pass.
                self._admit(ctx)
            return

        # 3. Grow into idleness: queue empty and plenty free.
        free = ctx.cluster.free_gpus
        if free < max(1, int(ctx.cluster.total_gpus * self.grow_free_fraction)):
            return
        candidates = self._resizable(ctx, ctx.now, shrinking=False)
        growable = [j for j in candidates if j.num_gpus - j.current_gpus <= free]
        if growable:
            job = min(growable, key=lambda j: (j.current_gpus, j.submit_time, j.job_id))
            self._last_resize[job.job_id] = ctx.now
            ctx.preempt_job(job)
            placement = self.try_place_elastic(ctx, job)
            if placement is not None:
                ctx.start_job(job, placement)
