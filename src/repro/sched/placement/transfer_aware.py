"""Transfer-aware placement: put workflow stages where their inputs sit.

For a stage consuming upstream artifacts, the dominant start-up cost can be
moving those artifacts across the leaf–spine fabric.  This policy ranks
candidate nodes by the artifact-fetch seconds they would incur (priced by
:func:`repro.execlayer.transfer.transfer_seconds` — the *same* model the
simulator charges as setup time, so the policy optimises exactly what the
simulation measures), breaking ties best-fit style.

It also weighs moving data against *queueing where the data already sits*:
when the cheapest available placement still costs more than
``defer_threshold_s`` of transfer and a node holding the artifacts is
currently busy (so its release is a future event that will re-wake the
scheduler), the policy declines to place for up to ``max_defers``
consultations, waiting for capacity near the data.  The deferral budget is
a deterministic per-job counter — no clocks, no randomness — and deferral
never happens when the preferred nodes are idle, so a deferred job can
always be re-awakened by the release that motivated the wait.

Jobs without artifact-bearing dependencies (all non-workflow traffic) fall
through to plain best-fit ranking, byte-identical to
:class:`~repro.sched.placement.best_fit.BestFitPlacement`.
"""

from __future__ import annotations

from typing import Mapping

from ...cluster.cluster import Cluster
from ...cluster.node import Node
from ...execlayer.transfer import artifact_fetch_seconds, transfer_seconds
from ...ids import JobId, NodeId
from ...workload.job import Job, ResourceRequest
from .base import PlacementPolicy, candidate_nodes, placement_possible, request_chunks


class TransferAwarePlacement(PlacementPolicy):
    """Rank candidates by upstream-artifact fetch cost, then best-fit."""

    name = "transfer-aware"

    #: Deferral is deliberately reserved for *extreme* fetches: measured on
    #: pipeline traces, waiting out a busy data node costs more queueing
    #: than it saves in transfer for anything under ~10 minutes of fetch
    #: (the scheduler pass that re-consults the policy is itself minutes
    #: away at moderate load), so the threshold defaults high and the
    #: patience budget small.
    def __init__(
        self, defer_threshold_s: float = 600.0, max_defers: int = 2
    ) -> None:
        self.defer_threshold_s = defer_threshold_s
        self.max_defers = max_defers
        self._jobs: Mapping[JobId, Job] | None = None
        self._defers: dict[JobId, int] = {}

    def bind(self, jobs: Mapping[JobId, Job]) -> None:
        self._jobs = jobs
        self._defers.clear()

    # -- request-only fallback (identical to best-fit) -------------------------

    def place(self, cluster: Cluster, request: ResourceRequest) -> dict[NodeId, int] | None:
        if not placement_possible(cluster, request):
            return None
        chunk = request_chunks(request)[0]
        ranked = sorted(
            candidate_nodes(cluster, request, chunk),
            key=lambda node: (node.free_gpus - chunk, node.node_id),
        )
        return self._assemble(cluster, request, ranked)

    # -- job-aware path --------------------------------------------------------

    def place_job(self, cluster: Cluster, job: Job) -> dict[NodeId, int] | None:
        upstreams = self._artifact_upstreams(job)
        if not upstreams:
            return self.place(cluster, job.request)
        request = job.request
        if not placement_possible(cluster, request):
            return None
        chunk = request_chunks(request)[0]
        candidates = candidate_nodes(cluster, request, chunk)
        topology = cluster.topology

        def fetch_cost(node: Node) -> float:
            return sum(
                transfer_seconds(
                    upstream.artifact_bytes,
                    upstream.last_nodes,
                    (node.node_id,),
                    topology,
                )
                for upstream in upstreams
            )

        ranked = sorted(
            candidates,
            key=lambda node: (fetch_cost(node), node.free_gpus - chunk, node.node_id),
        )
        placement = self._assemble(cluster, request, ranked)
        if placement is None:
            return None
        assert self._jobs is not None
        cost = artifact_fetch_seconds(
            job, tuple(sorted(placement)), self._jobs, topology
        )
        if cost <= self.defer_threshold_s:
            self._defers.pop(job.job_id, None)
            return placement
        # The best placement available now still pays a heavy transfer.
        # Queue where the data sits instead — but only while a node holding
        # the artifacts is busy (its release is the wake-up we wait for)
        # and the patience budget lasts.
        deferred = self._defers.get(job.job_id, 0)
        if deferred < self.max_defers and self._data_nodes_busy(cluster, upstreams):
            self._defers[job.job_id] = deferred + 1
            return None
        self._defers.pop(job.job_id, None)
        return placement

    def _artifact_upstreams(self, job: Job) -> tuple[Job, ...]:
        if self._jobs is None or not job.depends_on:
            return ()
        upstreams = []
        for upstream_id in job.depends_on:
            upstream = self._jobs.get(upstream_id)
            if (
                upstream is not None
                and upstream.artifact_bytes > 0
                and upstream.last_nodes
            ):
                upstreams.append(upstream)
        return tuple(upstreams)

    @staticmethod
    def _data_nodes_busy(cluster: Cluster, upstreams: tuple[Job, ...]) -> bool:
        for upstream in upstreams:
            for node_id in upstream.last_nodes:
                node = cluster.nodes.get(node_id)
                if node is not None and node.healthy and node.used_gpus > 0:
                    return True
        return False
