"""HiveD-style buddy-cell placement.

HiveD (OSDI'20) allocates GPUs as *cells* from a power-of-two hierarchy
(1 → 2 → 4 → 8 GPUs inside a node) so that multi-GPU jobs always receive
affinity-aligned GPU sets and small jobs cannot shred nodes into unusable
fragments.  This module implements the intra-node buddy system:

* every node's capacity is decomposed into power-of-two cells;
* a request chunk of ``c`` GPUs takes one cell of ``next_pow2(c)``,
  splitting a larger free cell when needed (lowest offset first, so the
  allocator is deterministic);
* freeing merges buddy cells back greedily.

Because schedulers probe placements speculatively (backfill feasibility
checks), :meth:`place` is **pure** — cell state only mutates in the
``on_allocate`` / ``on_free`` hooks the simulator invokes around actual
cluster allocation, where the cells chosen by ``place`` are re-derived
deterministically.

The cost of alignment is tracked in :attr:`BuddyCellPlacement.waste_gpus`:
a 3-GPU chunk occupies a 4-cell, stranding one GPU for the job's lifetime.
The F8 experiment weighs that against the fragmentation it prevents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...cluster.cluster import Cluster
from ...cluster.node import Node
from ...errors import PlacementError
from ...ids import JobId, NodeId
from ...workload.job import ResourceRequest
from .base import (
    PlacementPolicy,
    iter_candidate_nodes,
    placement_possible,
    request_chunks,
)


def next_pow2(value: int) -> int:
    """Smallest power of two >= value (value must be positive)."""
    if value <= 0:
        raise ValueError(f"next_pow2 needs a positive value, got {value}")
    return 1 << (value - 1).bit_length()


def pow2_decompose(value: int) -> list[int]:
    """Decompose a capacity into descending powers of two (6 -> [4, 2])."""
    parts: list[int] = []
    bit = 1 << value.bit_length()
    while value:
        bit >>= 1
        if value >= bit:
            parts.append(bit)
            value -= bit
    return parts


@dataclass
class _NodeCells:
    """Buddy free-lists for one node: {cell_size: sorted offsets}."""

    capacity: int
    free: dict[int, list[int]] = field(default_factory=dict)

    @classmethod
    def fresh(cls, capacity: int) -> "_NodeCells":
        cells = cls(capacity=capacity)
        offset = 0
        for size in pow2_decompose(capacity):
            cells.free.setdefault(size, []).append(offset)
            offset += size
        return cells

    def largest_free(self) -> int:
        return max((size for size, offsets in self.free.items() if offsets), default=0)

    def free_gpus(self) -> int:
        return sum(size * len(offsets) for size, offsets in self.free.items())

    def can_host(self, cell_size: int) -> bool:
        return self.largest_free() >= cell_size

    def take(self, cell_size: int) -> int:
        """Allocate one cell of *cell_size*; returns its offset.

        Splits the smallest adequate free cell, keeping low offsets, so the
        outcome is a pure function of the free-list state.
        """
        adequate = sorted(
            size for size, offsets in self.free.items() if offsets and size >= cell_size
        )
        if not adequate:
            raise PlacementError(f"no free cell of size {cell_size}")
        size = adequate[0]
        offset = self.free[size].pop(0)
        if not self.free[size]:
            del self.free[size]
        while size > cell_size:
            size //= 2
            # Keep the low half, return the high half (the buddy) to the list.
            self.free.setdefault(size, []).append(offset + size)
            self.free[size].sort()
        return offset

    def release(self, cell_size: int, offset: int) -> None:
        """Free a cell and merge buddies upward while possible."""
        size = cell_size
        while size < self.capacity:
            buddy = offset ^ size
            offsets = self.free.get(size, [])
            if buddy in offsets:
                offsets.remove(buddy)
                if not offsets:
                    del self.free[size]
                offset = min(offset, buddy)
                size *= 2
            else:
                break
        self.free.setdefault(size, []).append(offset)
        self.free[size].sort()

    def verify(self) -> None:
        """Free cells must be disjoint, aligned, and within capacity."""
        seen: set[int] = set()
        for size, offsets in self.free.items():
            for offset in offsets:
                if offset % size:
                    raise PlacementError(f"cell offset {offset} misaligned for size {size}")
                span = set(range(offset, offset + size))
                if span & seen:
                    raise PlacementError("overlapping free cells")
                if offset + size > self.capacity:
                    raise PlacementError("free cell exceeds node capacity")
                seen |= span


class BuddyCellPlacement(PlacementPolicy):
    """HiveD-style affinity-aligned placement with buddy cells."""

    name = "buddy-cell"

    def __init__(self) -> None:
        self._cells: dict[NodeId, _NodeCells] = {}
        self._job_cells: dict[JobId, list[tuple[NodeId, int, int]]] = {}
        #: Cumulative GPUs stranded by alignment rounding, for the F8 report.
        self.waste_gpus: int = 0

    # -- state management -----------------------------------------------------

    def _cells_of(self, node: Node) -> _NodeCells:
        cells = self._cells.get(node.node_id)
        if cells is None:
            cells = _NodeCells.fresh(node.spec.num_gpus)
            self._cells[node.node_id] = cells
        return cells

    # -- placement (pure) ---------------------------------------------------------

    def place(self, cluster: Cluster, request: ResourceRequest) -> dict[NodeId, int] | None:
        if not placement_possible(cluster, request):
            return None
        chunks = request_chunks(request)
        chunk = chunks[0]
        cell_size = next_pow2(chunk)
        ranked: list[tuple[tuple[int, int, str], Node]] = []
        for node in iter_candidate_nodes(cluster, request, chunk):
            cells = self._cells_of(node)
            if not cells.can_host(cell_size):
                continue
            smallest_adequate = min(
                size
                for size, offsets in cells.free.items()
                if offsets and size >= cell_size
            )
            # Tightest alignment first, then fullest node, then id.
            ranked.append(((smallest_adequate, cells.free_gpus(), node.node_id), node))
        ranked.sort(key=lambda item: item[0])
        return self._assemble(cluster, request, [node for _key, node in ranked])

    # -- lifecycle hooks (mutating) --------------------------------------------------

    def on_allocate(self, cluster: Cluster, job_id: JobId, placement: dict[NodeId, int]) -> None:
        if job_id in self._job_cells:
            raise PlacementError(f"job {job_id} already holds cells")
        taken: list[tuple[NodeId, int, int]] = []
        try:
            for node_id in sorted(placement):
                count = placement[node_id]
                cell_size = next_pow2(count)
                cells = self._cells_of(cluster.node(node_id))
                offset = cells.take(cell_size)
                taken.append((node_id, cell_size, offset))
                self.waste_gpus += cell_size - count
        except PlacementError:
            for node_id, cell_size, offset in taken:
                self._cells[node_id].release(cell_size, offset)
            raise
        self._job_cells[job_id] = taken

    def on_free(self, cluster: Cluster, job_id: JobId, placement: dict[NodeId, int]) -> None:
        taken = self._job_cells.pop(job_id, None)
        if taken is None:
            raise PlacementError(f"job {job_id} holds no cells to free")
        for node_id, cell_size, offset in taken:
            self._cells[node_id].release(cell_size, offset)

    # -- auditing -------------------------------------------------------------------

    def verify_invariants(self, cluster: Cluster) -> None:
        """Cell books must be internally consistent and total to capacity."""
        held: dict[NodeId, int] = {}
        for cells_list in self._job_cells.values():
            for node_id, cell_size, _offset in cells_list:
                held[node_id] = held.get(node_id, 0) + cell_size
        for node_id, cells in self._cells.items():
            cells.verify()
            total = cells.free_gpus() + held.get(node_id, 0)
            capacity = cluster.node(node_id).spec.num_gpus
            if total != capacity:
                raise PlacementError(
                    f"{node_id}: cells account for {total} GPUs, capacity {capacity}"
                )
