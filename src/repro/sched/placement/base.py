"""Placement policy interface and shared chunking logic.

Given a resource request and the live cluster, a placement policy returns
``{node_id: gpu_count}`` or ``None`` when it declines to place now.  All
policies share the same feasibility rules, implemented here:

* a placement uses a single GPU type (mixing types in one data-parallel
  job pins the job to the slowest card, so the cluster forbids it);
* a request splits into equal *chunks*: single-node jobs are one chunk of
  ``num_gpus``; multi-node jobs are ``num_gpus / gpus_per_node`` chunks,
  each filling its node allocation entirely (gang semantics);
* every chunk's node must also fit the per-GPU CPU/memory ask.

Stateful allocators (HiveD buddy cells) additionally receive
``on_allocate`` / ``on_free`` callbacks from the simulator so their internal
books track the cluster.
"""

from __future__ import annotations

import abc
from typing import Iterator, Mapping

from ...cluster.cluster import Cluster
from ...cluster.node import Node
from ...ids import JobId, NodeId
from ...workload.job import Job, ResourceRequest


def request_chunks(request: ResourceRequest) -> list[int]:
    """Split a request into per-node GPU chunks.

    >>> request_chunks(ResourceRequest(num_gpus=16, gpus_per_node=8))
    [8, 8]
    >>> request_chunks(ResourceRequest(num_gpus=4))
    [4]
    """
    per_node = request.gpus_per_node
    if per_node is None or request.num_gpus <= per_node:
        return [request.num_gpus]
    return [per_node] * (request.num_gpus // per_node)


def node_fits_chunk(node: Node, request: ResourceRequest, chunk: int) -> bool:
    """True when *node* can host one chunk of *request* right now."""
    if request.gpu_type is not None and node.spec.gpu_type != request.gpu_type:
        return False
    if request.allowed_nodes is not None and node.node_id not in request.allowed_nodes:
        return False
    return node.can_fit(
        chunk,
        cpus=request.cpus_per_gpu * chunk,
        memory_gb=request.memory_gb_per_gpu * chunk,
    )


def iter_candidate_nodes(
    cluster: Cluster, request: ResourceRequest, chunk: int
) -> Iterator[Node]:
    """Lazily yield healthy nodes that can host one chunk, in id order.

    Scans the cluster index's pre-bucketed pools (per-type for typed
    requests) instead of re-sorting ``cluster.nodes`` per attempt, and
    yields in the same order the full sorted scan would — so consumers that
    stop early (first-fit needs only ``len(chunks)`` hits) skip the tail of
    the cluster entirely without changing any placement decision.
    """
    allowed = request.allowed_nodes
    cpus_needed = request.cpus_per_gpu * chunk
    memory_needed = request.memory_gb_per_gpu * chunk
    for node in cluster.index.iter_candidates(request.gpu_type, chunk):
        if allowed is not None and node.node_id not in allowed:
            continue
        if node.can_fit(chunk, cpus_needed, memory_needed):
            yield node


def candidate_nodes(cluster: Cluster, request: ResourceRequest, chunk: int) -> list[Node]:
    """Healthy nodes that can host one chunk, in deterministic id order."""
    return list(iter_candidate_nodes(cluster, request, chunk))


def placement_possible(cluster: Cluster, request: ResourceRequest) -> bool:
    """O(1) necessary condition for placing *request* right now.

    Checks the index's availability histogram: some single GPU type must
    have ``len(chunks)`` nodes with a chunk's worth of free GPUs.  When it
    fails, every candidate scan is guaranteed to come up short, so policies
    bail before examining a single node — the common case on a congested
    cluster, where most scheduler-pass placement attempts are doomed.
    """
    chunks = request_chunks(request)
    return cluster.index.placement_possible(request.gpu_type, chunks[0], len(chunks))


class PlacementPolicy(abc.ABC):
    """Strategy object answering "where should this request run?"."""

    name: str = "abstract"

    @abc.abstractmethod
    def place(self, cluster: Cluster, request: ResourceRequest) -> dict[NodeId, int] | None:
        """Return a placement or ``None`` when the request cannot start now."""

    def place_job(self, cluster: Cluster, job: Job) -> dict[NodeId, int] | None:
        """Job-aware entry point the scheduler calls.

        The default ignores job identity and delegates to :meth:`place`, so
        every existing policy behaves exactly as before.  Policies that care
        *which* job is being placed (transfer-aware: where do its upstream
        artifacts sit?) override this.
        """
        return self.place(cluster, job.request)

    def bind(self, jobs: Mapping[JobId, Job]) -> None:
        """Give the policy read access to the simulation's job table.

        Called once by the simulator at construction.  Default: no-op;
        job-aware policies keep the mapping to resolve dependency ids.
        """

    # -- lifecycle hooks for stateful allocators -------------------------------

    def on_allocate(self, cluster: Cluster, job_id: JobId, placement: dict[NodeId, int]) -> None:
        """Called by the simulator after a placement commits."""

    def on_free(self, cluster: Cluster, job_id: JobId, placement: dict[NodeId, int]) -> None:
        """Called by the simulator after a job's resources are released."""

    def _assemble(
        self,
        cluster: Cluster,
        request: ResourceRequest,
        ranked_nodes: list[Node],
    ) -> dict[NodeId, int] | None:
        """Greedily assign chunks to *ranked_nodes* (one chunk per node).

        Shared tail of most policies: the policy ranks candidates, this
        helper takes the first ``len(chunks)`` of them.  Since all chunks of
        a request are equal, feasibility per node is uniform.
        """
        chunks = request_chunks(request)
        if len(ranked_nodes) < len(chunks):
            return None
        if request.gpu_type is None:
            # Single-type constraint: take the best type that has enough
            # nodes.  Grouping preserves ranked order, and dict insertion
            # order is exactly first-occurrence-in-ranking order — no
            # O(n²) index() re-scan needed to rank the types.
            by_type: dict[str, list[Node]] = {}
            for node in ranked_nodes:
                by_type.setdefault(node.spec.gpu_type, []).append(node)
            for nodes in by_type.values():
                if len(nodes) >= len(chunks):
                    return {
                        node.node_id: chunk
                        for node, chunk in zip(nodes, chunks)
                    }
            return None
        return {node.node_id: chunk for node, chunk in zip(ranked_nodes, chunks)}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
