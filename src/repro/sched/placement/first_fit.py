"""First-fit placement: take the first nodes (in id order) that fit.

The simplest baseline: fast, deterministic, but fragmentation-blind — small
jobs land on the emptiest-id nodes and strand partial nodes, which the F8
placement experiment quantifies against best-fit and buddy-cell allocation.

Because first-fit ranks nodes purely by id, it consumes the candidate scan
lazily: the scan stops as soon as ``len(chunks)`` fitting nodes are found
(one, for the typical single-node job), so its per-attempt cost is bounded
by how far the first fits are, not by cluster size.  Cross-type requests on
heterogeneous clusters still need the full candidate list to apply the
single-GPU-type rule, and fall back to the shared ``_assemble`` tail.
"""

from __future__ import annotations

from ...cluster.cluster import Cluster
from ...cluster.node import Node
from ...ids import NodeId
from ...workload.job import ResourceRequest
from .base import PlacementPolicy, iter_candidate_nodes, placement_possible, request_chunks


class FirstFitPlacement(PlacementPolicy):
    """Scan nodes in id order; take the first that fit each chunk."""

    name = "first-fit"

    def place(self, cluster: Cluster, request: ResourceRequest) -> dict[NodeId, int] | None:
        if not placement_possible(cluster, request):
            return None
        chunks = request_chunks(request)
        candidates = iter_candidate_nodes(cluster, request, chunks[0])
        if request.gpu_type is None and len(cluster.index.gpu_types) > 1:
            return self._assemble(cluster, request, list(candidates))
        # Single-typed candidate stream: the first len(chunks) fits ARE the
        # placement, so stop scanning the moment they are found.
        taken: list[Node] = []
        for node in candidates:
            taken.append(node)
            if len(taken) == len(chunks):
                return {node.node_id: chunk for node, chunk in zip(taken, chunks)}
        return None
