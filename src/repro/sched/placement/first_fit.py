"""First-fit placement: take the first nodes (in id order) that fit.

The simplest baseline: fast, deterministic, but fragmentation-blind — small
jobs land on the emptiest-id nodes and strand partial nodes, which the F8
placement experiment quantifies against best-fit and buddy-cell allocation.
"""

from __future__ import annotations

from ...cluster.cluster import Cluster
from ...ids import NodeId
from ...workload.job import ResourceRequest
from .base import PlacementPolicy, candidate_nodes, request_chunks


class FirstFitPlacement(PlacementPolicy):
    """Scan nodes in id order; take the first that fit each chunk."""

    name = "first-fit"

    def place(self, cluster: Cluster, request: ResourceRequest) -> dict[NodeId, int] | None:
        chunk = request_chunks(request)[0]
        candidates = candidate_nodes(cluster, request, chunk)
        return self._assemble(cluster, request, candidates)
