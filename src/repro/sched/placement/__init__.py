"""Placement policies: where on the cluster a request's GPUs land."""

from .base import PlacementPolicy, candidate_nodes, node_fits_chunk, request_chunks
from .best_fit import BestFitPlacement, WorstFitPlacement
from .first_fit import FirstFitPlacement
from .hived import BuddyCellPlacement, next_pow2, pow2_decompose
from .topology_aware import TopologyAwarePlacement
from .transfer_aware import TransferAwarePlacement

PLACEMENT_POLICIES = {
    "first-fit": FirstFitPlacement,
    "best-fit": BestFitPlacement,
    "worst-fit": WorstFitPlacement,
    "topology-aware": TopologyAwarePlacement,
    "buddy-cell": BuddyCellPlacement,
    "transfer-aware": TransferAwarePlacement,
}


def make_placement(name: str) -> PlacementPolicy:
    """Instantiate a placement policy by registry name."""
    from ...errors import ConfigError

    try:
        return PLACEMENT_POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown placement policy {name!r}; known: {sorted(PLACEMENT_POLICIES)}"
        ) from None


__all__ = [
    "PLACEMENT_POLICIES",
    "BestFitPlacement",
    "BuddyCellPlacement",
    "FirstFitPlacement",
    "PlacementPolicy",
    "TopologyAwarePlacement",
    "TransferAwarePlacement",
    "WorstFitPlacement",
    "candidate_nodes",
    "make_placement",
    "next_pow2",
    "node_fits_chunk",
    "pow2_decompose",
    "request_chunks",
]
