"""Topology-aware placement: minimise rack spread, then pack tightly.

Distributed training throughput drops when replicas cross the
oversubscribed spine (see :mod:`repro.execlayer.comm`), so this policy
first tries to land all chunks of a job inside a single rack, choosing the
rack that can *barely* host it (leaving roomier racks for wider jobs), and
packs best-fit within the rack.  Only when no single rack suffices does it
spill across racks, using as few as possible.
"""

from __future__ import annotations

from ...cluster.cluster import Cluster
from ...cluster.node import Node
from ...ids import NodeId, RackId
from ...workload.job import ResourceRequest
from .base import PlacementPolicy, candidate_nodes, placement_possible, request_chunks


class TopologyAwarePlacement(PlacementPolicy):
    """Pack chunks into the fewest racks, tightest rack first."""

    name = "topology-aware"

    def place(self, cluster: Cluster, request: ResourceRequest) -> dict[NodeId, int] | None:
        if not placement_possible(cluster, request):
            return None
        chunk = request_chunks(request)[0]
        num_chunks = len(request_chunks(request))
        candidates = candidate_nodes(cluster, request, chunk)
        if not candidates:
            return None
        # Respect the single-GPU-type rule per attempt; prefer the type
        # that yields the fewest racks, then deterministic type order.
        best: dict[NodeId, int] | None = None
        best_key: tuple[int, str] | None = None
        for gpu_type in sorted({node.spec.gpu_type for node in candidates}):
            typed = [n for n in candidates if n.spec.gpu_type == gpu_type]
            placement = self._place_typed(typed, chunk, num_chunks)
            if placement is None:
                continue
            racks = len({cluster.node(nid).rack_id for nid in placement})
            key = (racks, gpu_type)
            if best_key is None or key < best_key:
                best, best_key = placement, key
        return best

    def _place_typed(
        self, nodes: list[Node], chunk: int, num_chunks: int
    ) -> dict[NodeId, int] | None:
        if len(nodes) < num_chunks:
            return None
        by_rack: dict[RackId, list[Node]] = {}
        for node in nodes:
            by_rack.setdefault(node.rack_id, []).append(node)
        # Single-rack attempt: tightest rack that can host everything.
        fitting = [
            (len(members), rack) for rack, members in by_rack.items() if len(members) >= num_chunks
        ]
        if fitting:
            _count, rack = min(fitting)
            chosen = self._tightest(by_rack[rack], num_chunks, chunk)
            return {node.node_id: chunk for node in chosen}
        # Spill: largest racks first to minimise rack count, tight within each.
        placement: dict[NodeId, int] = {}
        remaining = num_chunks
        for rack in sorted(by_rack, key=lambda r: (-len(by_rack[r]), r)):
            take = min(remaining, len(by_rack[rack]))
            for node in self._tightest(by_rack[rack], take, chunk):
                placement[node.node_id] = chunk
            remaining -= take
            if remaining == 0:
                return placement
        return None

    @staticmethod
    def _tightest(nodes: list[Node], count: int, chunk: int) -> list[Node]:
        """Best-fit selection of *count* nodes from one rack."""
        ranked = sorted(nodes, key=lambda node: (node.free_gpus - chunk, node.node_id))
        return ranked[:count]
