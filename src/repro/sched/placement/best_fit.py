"""Best-fit (tightest-fit) placement, plus worst-fit for comparison.

Best-fit ranks candidate nodes by the free GPUs *left over* after hosting a
chunk, ascending — filling nearly-full nodes first keeps whole nodes empty
for wide jobs, reducing external fragmentation relative to first-fit.
Worst-fit does the opposite (emptiest node first); it spreads load, which
helps per-node interference but wrecks multi-GPU schedulability, and serves
as the anti-baseline in the F8 experiment.
"""

from __future__ import annotations

from ...cluster.cluster import Cluster
from ...ids import NodeId
from ...workload.job import ResourceRequest
from .base import PlacementPolicy, candidate_nodes, placement_possible, request_chunks


class BestFitPlacement(PlacementPolicy):
    """Rank candidates by leftover free GPUs ascending (tightest first)."""

    name = "best-fit"

    def place(self, cluster: Cluster, request: ResourceRequest) -> dict[NodeId, int] | None:
        if not placement_possible(cluster, request):
            return None
        chunk = request_chunks(request)[0]
        candidates = candidate_nodes(cluster, request, chunk)
        ranked = sorted(
            candidates, key=lambda node: (node.free_gpus - chunk, node.node_id)
        )
        return self._assemble(cluster, request, ranked)


class WorstFitPlacement(PlacementPolicy):
    """Rank candidates by leftover free GPUs descending (emptiest first)."""

    name = "worst-fit"

    def place(self, cluster: Cluster, request: ResourceRequest) -> dict[NodeId, int] | None:
        if not placement_possible(cluster, request):
            return None
        chunk = request_chunks(request)[0]
        candidates = candidate_nodes(cluster, request, chunk)
        ranked = sorted(
            candidates, key=lambda node: (-(node.free_gpus - chunk), node.node_id)
        )
        return self._assemble(cluster, request, ranked)
