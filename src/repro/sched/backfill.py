"""EASY and conservative backfill scheduling.

Backfill fixes strict FIFO's head-of-line blocking: when the head job must
wait for GPUs to free up, the scheduler computes its *reservation* (the
shadow time at which enough capacity will exist, from running jobs'
user-estimated remaining times) and lets smaller jobs run meanwhile —
provided they cannot delay the reservation.

* **EASY** (Argonne's Extensible Argonne Scheduling sYstem) reserves only
  for the *first* blocked job.  A candidate backfills if it will finish
  before the shadow time, or if it fits in the "extra" GPUs that remain
  even after the head job starts.
* **Conservative** gives *every* blocked job a reservation; a candidate
  must finish before the earliest standing reservation.  Fewer delays to
  waiting jobs, less backfill, lower utilization — the F6 experiment
  quantifies the trade.

Reservations are computed on GPU *counts* within the job's eligible node
set (capacity-accurate, placement-approximate), as real Slurm does.

Fleet-scale note: reservations used to cost a full scan over running jobs
and their nodes on every blocked pass.  :class:`_ReleaseLedger` maintains
the same release schedule *incrementally* — sorted ``(end, gpus, seq)``
lists per GPU type, updated on job start/stop — so a reservation costs
O(log running) plus the prefix actually walked.  The scalar scan helpers
are kept both as the fallback for ``allowed_nodes``-restricted requests
and as the reference the ledger is pinned against in tests; the ledger's
ordering reproduces the scan's sort exactly (see :meth:`releases`).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort_right
from math import inf

from ..cluster.cluster import Cluster
from ..ids import JobId
from ..workload.job import Job
from .base import ScheduleContext, Scheduler
from .placement.base import PlacementPolicy

#: One ledger record: (estimated absolute end, GPUs released, start sequence).
_LedgerEntry = tuple[float, int, int]


class _Reservation:
    """Head-job reservation: when capacity suffices, and what's left over."""

    __slots__ = ("shadow_time", "extra_gpus")

    def __init__(self, shadow_time: float, extra_gpus: int) -> None:
        self.shadow_time = shadow_time
        self.extra_gpus = extra_gpus


def _node_eligible(ctx: ScheduleContext, job: Job, node) -> bool:
    request = job.request
    if request.gpu_type is not None and node.spec.gpu_type != request.gpu_type:
        return False
    if request.allowed_nodes is not None and node.node_id not in request.allowed_nodes:
        return False
    return True


def _eligible_gpus_free(ctx: ScheduleContext, job: Job) -> int:
    """Free GPUs on healthy nodes this job could use (full scan)."""
    return sum(
        node.free_gpus
        for node in ctx.cluster.nodes.values()
        if node.healthy and _node_eligible(ctx, job, node)
    )


def _release_schedule(ctx: ScheduleContext, job: Job) -> list[tuple[float, int]]:
    """(estimated_end, gpus_released) for running jobs on eligible nodes.

    Full scan over running jobs and their nodes — the reference the
    incremental ledger reproduces, retained for restricted requests.
    """
    releases: list[tuple[float, int]] = []
    for running in ctx.running.values():
        gpus = 0
        for node_id in running.current_nodes:
            node = ctx.cluster.node(node_id)
            if _node_eligible(ctx, job, node):
                gpus += node.allocation_for(running.job_id).num_gpus
        if gpus:
            releases.append((ctx.now + running.estimated_remaining(ctx.now), gpus))
    releases.sort()
    return releases


class _ReleaseLedger:
    """Incremental mirror of :func:`_release_schedule` for unrestricted jobs.

    One entry per (running job, GPU type it holds): ``(end, gpus, seq)``
    where ``end = last_start_time + walltime_estimate`` is constant for the
    lifetime of the run segment and ``seq`` is a monotone start counter.
    Entries live in per-type sorted lists plus a global one (for untyped
    requests); a job entering/leaving the running set costs O(log n) to
    locate plus a list splice.

    Exactness of :meth:`releases`: the scalar scan emits
    ``(max(now, end), gpus)`` tuples in running-dict order — which *is*
    start order — then stable-sorts them.  So the overdue group
    (``end <= now``, clamped to ``now``) sorts by ``(gpus, seq)`` and
    precedes everything else, and the future entries sort by
    ``(end, gpus, seq)`` — exactly the ledger's stored order.
    """

    __slots__ = ("_seq", "_by_type", "_global", "_entries")

    def __init__(self) -> None:
        self._seq = 0
        self._by_type: dict[str, list[_LedgerEntry]] = {}
        self._global: list[_LedgerEntry] = []
        self._entries: dict[JobId, tuple[tuple[tuple[str, _LedgerEntry], ...], _LedgerEntry]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, job: Job, cluster: Cluster, now: float) -> None:
        """Record *job*'s future release; call when it enters RUNNING."""
        if job.job_id in self._entries:  # restart without an observed stop
            self.discard(job.job_id)
        gpus_by_type: dict[str, int] = {}
        for node_id in job.current_nodes:
            node = cluster.node(node_id)
            allocated = node.allocation_for(job.job_id).num_gpus
            gpus_by_type[node.spec.gpu_type] = (
                gpus_by_type.get(node.spec.gpu_type, 0) + allocated
            )
        total = sum(gpus_by_type.values())
        if not total:
            return
        end = now + job.estimated_remaining(now)
        seq = self._seq
        self._seq += 1
        typed: list[tuple[str, _LedgerEntry]] = []
        for gpu_type, gpus in gpus_by_type.items():
            entry: _LedgerEntry = (end, gpus, seq)
            insort_right(self._by_type.setdefault(gpu_type, []), entry)
            typed.append((gpu_type, entry))
        global_entry: _LedgerEntry = (end, total, seq)
        insort_right(self._global, global_entry)
        self._entries[job.job_id] = (tuple(typed), global_entry)

    def discard(self, job_id: JobId) -> None:
        """Drop *job_id*'s entries; no-op when absent."""
        item = self._entries.pop(job_id, None)
        if item is None:
            return
        typed, global_entry = item
        for gpu_type, entry in typed:
            rows = self._by_type[gpu_type]
            del rows[bisect_left(rows, entry)]
        del self._global[bisect_left(self._global, global_entry)]

    def releases(self, gpu_type: str | None, now: float) -> list[tuple[float, int]]:
        """The exact :func:`_release_schedule` output for an unrestricted job."""
        entries = self._global if gpu_type is None else self._by_type.get(gpu_type, [])
        split = bisect_right(entries, (now, inf))
        overdue = sorted((gpus, seq) for _end, gpus, seq in entries[:split])
        schedule = [(now, gpus) for gpus, _seq in overdue]
        schedule.extend((end, gpus) for end, gpus, _seq in entries[split:])
        return schedule

    def rebuild(self, running: dict[JobId, Job], cluster: Cluster, now: float) -> None:
        """Re-derive the ledger from the live running set (fork/new cluster)."""
        self._seq = 0
        self._by_type = {}
        self._global = []
        self._entries = {}
        for job in running.values():
            self.add(job, cluster, now)


def compute_reservation(
    ctx: ScheduleContext, job: Job, ledger: _ReleaseLedger | None = None
) -> _Reservation:
    """EASY reservation for a blocked *job* from user estimates.

    Walks the release schedule until cumulative free capacity covers the
    job; ``extra_gpus`` is what remains free at that instant beyond the
    job's need — the budget backfill jobs may hold past the shadow time.
    Unrestricted requests read free capacity from the O(1) index aggregates
    and the incremental ledger; ``allowed_nodes``-restricted ones fall back
    to the full scan (the two paths agree exactly — pinned by tests).
    """
    request = job.request
    perf = ctx.cluster.index.perf
    if ledger is not None and request.allowed_nodes is None:
        perf.reservations_incremental += 1
        index = ctx.cluster.index
        if request.gpu_type is None:
            available = index.free_healthy_gpus
        else:
            available = index.free_gpus_of_type(request.gpu_type)
        schedule = ledger.releases(request.gpu_type, ctx.now)
    else:
        perf.reservations_scanned += 1
        available = _eligible_gpus_free(ctx, job)
        schedule = _release_schedule(ctx, job)
    needed = job.num_gpus
    if available >= needed:
        return _Reservation(ctx.now, available - needed)
    for end_time, gpus in schedule:
        available += gpus
        if available >= needed:
            return _Reservation(end_time, available - needed)
    return _Reservation(float("inf"), 0)


class _BackfillScheduler(Scheduler):
    """Shared skeleton: FIFO queue plus an incrementally-maintained ledger."""

    def __init__(self, placement: PlacementPolicy | None = None) -> None:
        super().__init__(placement)
        self._ledger = _ReleaseLedger()
        self._cluster: Cluster | None = None

    def _sync_ledger(self, ctx: ScheduleContext) -> None:
        if self._cluster is not ctx.cluster:
            # First pass, or a different cluster behind the same scheduler
            # object (snapshot/fork): rebuild from the live running set.
            self._cluster = ctx.cluster
            self._ledger.rebuild(dict(ctx.running), ctx.cluster, ctx.now)

    # -- lifecycle hooks keeping the ledger exact --------------------------------

    def on_start(self, job: Job, now: float) -> None:
        if self._cluster is not None:
            self._ledger.add(job, self._cluster, now)

    def on_finish(self, job: Job, now: float) -> None:
        self._ledger.discard(job.job_id)

    def on_enqueue(self, job: Job, now: float) -> None:
        # Covers requeues after preemption/node failure: the job left the
        # running set without a finish notification.
        self._ledger.discard(job.job_id)

    def _fifo_queue(self) -> list[Job]:
        return sorted(self.queue, key=lambda job: (job.submit_time, job.job_id))


class EasyBackfillScheduler(_BackfillScheduler):
    """FIFO order with EASY (aggressive) backfill."""

    name = "backfill-easy"

    def schedule(self, ctx: ScheduleContext) -> None:
        self._sync_ledger(ctx)
        queue = self._fifo_queue()
        reservation: _Reservation | None = None
        for job in queue:
            placement = self.try_place(ctx, job)
            if reservation is None:
                if placement is not None:
                    ctx.start_job(job, placement)
                    continue
                # First blocked job: it gets the reservation.
                reservation = compute_reservation(ctx, job, self._ledger)
                continue
            # Backfill region: must not delay the reservation.
            if placement is None:
                continue
            finish_estimate = ctx.now + (job.walltime_estimate or 0.0)
            if finish_estimate <= reservation.shadow_time:
                ctx.start_job(job, placement)
            elif job.num_gpus <= reservation.extra_gpus:
                ctx.start_job(job, placement)
                reservation.extra_gpus -= job.num_gpus


class ConservativeBackfillScheduler(_BackfillScheduler):
    """FIFO order where every blocked job holds a reservation."""

    name = "backfill-conservative"

    def schedule(self, ctx: ScheduleContext) -> None:
        self._sync_ledger(ctx)
        queue = self._fifo_queue()
        earliest_reservation = float("inf")
        for job in queue:
            placement = self.try_place(ctx, job)
            if placement is not None and earliest_reservation == float("inf"):
                ctx.start_job(job, placement)
                continue
            if placement is None:
                reservation = compute_reservation(ctx, job, self._ledger)
                earliest_reservation = min(earliest_reservation, reservation.shadow_time)
                continue
            finish_estimate = ctx.now + (job.walltime_estimate or 0.0)
            if finish_estimate <= earliest_reservation:
                ctx.start_job(job, placement)
