"""EASY and conservative backfill scheduling.

Backfill fixes strict FIFO's head-of-line blocking: when the head job must
wait for GPUs to free up, the scheduler computes its *reservation* (the
shadow time at which enough capacity will exist, from running jobs'
user-estimated remaining times) and lets smaller jobs run meanwhile —
provided they cannot delay the reservation.

* **EASY** (Argonne's Extensible Argonne Scheduling sYstem) reserves only
  for the *first* blocked job.  A candidate backfills if it will finish
  before the shadow time, or if it fits in the "extra" GPUs that remain
  even after the head job starts.
* **Conservative** gives *every* blocked job a reservation; a candidate
  must finish before the earliest standing reservation.  Fewer delays to
  waiting jobs, less backfill, lower utilization — the F6 experiment
  quantifies the trade.

Reservations are computed on GPU *counts* within the job's eligible node
set (capacity-accurate, placement-approximate), as real Slurm does.
"""

from __future__ import annotations

from ..workload.job import Job
from .base import ScheduleContext, Scheduler
from .placement.base import PlacementPolicy


class _Reservation:
    """Head-job reservation: when capacity suffices, and what's left over."""

    __slots__ = ("shadow_time", "extra_gpus")

    def __init__(self, shadow_time: float, extra_gpus: int) -> None:
        self.shadow_time = shadow_time
        self.extra_gpus = extra_gpus


def _node_eligible(ctx: ScheduleContext, job: Job, node) -> bool:
    request = job.request
    if request.gpu_type is not None and node.spec.gpu_type != request.gpu_type:
        return False
    if request.allowed_nodes is not None and node.node_id not in request.allowed_nodes:
        return False
    return True


def _eligible_gpus_free(ctx: ScheduleContext, job: Job) -> int:
    """Free GPUs on healthy nodes this job could use."""
    return sum(
        node.free_gpus
        for node in ctx.cluster.nodes.values()
        if node.healthy and _node_eligible(ctx, job, node)
    )


def _release_schedule(ctx: ScheduleContext, job: Job) -> list[tuple[float, int]]:
    """(estimated_end, gpus_released) for running jobs on eligible nodes."""
    releases: list[tuple[float, int]] = []
    for running in ctx.running.values():
        gpus = 0
        for node_id in running.current_nodes:
            node = ctx.cluster.node(node_id)
            if _node_eligible(ctx, job, node):
                gpus += node.allocation_for(running.job_id).num_gpus
        if gpus:
            releases.append((ctx.now + running.estimated_remaining(ctx.now), gpus))
    releases.sort()
    return releases


def compute_reservation(ctx: ScheduleContext, job: Job) -> _Reservation:
    """EASY reservation for a blocked *job* from user estimates.

    Walks the release schedule until cumulative free capacity covers the
    job; ``extra_gpus`` is what remains free at that instant beyond the
    job's need — the budget backfill jobs may hold past the shadow time.
    """
    available = _eligible_gpus_free(ctx, job)
    needed = job.num_gpus
    if available >= needed:
        return _Reservation(ctx.now, available - needed)
    for end_time, gpus in _release_schedule(ctx, job):
        available += gpus
        if available >= needed:
            return _Reservation(end_time, available - needed)
    return _Reservation(float("inf"), 0)


class EasyBackfillScheduler(Scheduler):
    """FIFO order with EASY (aggressive) backfill."""

    name = "backfill-easy"

    def __init__(self, placement: PlacementPolicy | None = None) -> None:
        super().__init__(placement)

    def _fifo_queue(self) -> list[Job]:
        return sorted(self.queue, key=lambda job: (job.submit_time, job.job_id))

    def schedule(self, ctx: ScheduleContext) -> None:
        queue = self._fifo_queue()
        reservation: _Reservation | None = None
        for job in queue:
            placement = self.try_place(ctx, job)
            if reservation is None:
                if placement is not None:
                    ctx.start_job(job, placement)
                    continue
                # First blocked job: it gets the reservation.
                reservation = compute_reservation(ctx, job)
                continue
            # Backfill region: must not delay the reservation.
            if placement is None:
                continue
            finish_estimate = ctx.now + (job.walltime_estimate or 0.0)
            if finish_estimate <= reservation.shadow_time:
                ctx.start_job(job, placement)
            elif job.num_gpus <= reservation.extra_gpus:
                ctx.start_job(job, placement)
                reservation.extra_gpus -= job.num_gpus


class ConservativeBackfillScheduler(Scheduler):
    """FIFO order where every blocked job holds a reservation."""

    name = "backfill-conservative"

    def __init__(self, placement: PlacementPolicy | None = None) -> None:
        super().__init__(placement)

    def schedule(self, ctx: ScheduleContext) -> None:
        queue = sorted(self.queue, key=lambda job: (job.submit_time, job.job_id))
        earliest_reservation = float("inf")
        for job in queue:
            placement = self.try_place(ctx, job)
            if placement is not None and earliest_reservation == float("inf"):
                ctx.start_job(job, placement)
                continue
            if placement is None:
                reservation = compute_reservation(ctx, job)
                earliest_reservation = min(earliest_reservation, reservation.shadow_time)
                continue
            finish_estimate = ctx.now + (job.walltime_estimate or 0.0)
            if finish_estimate <= earliest_reservation:
                ctx.start_job(job, placement)
