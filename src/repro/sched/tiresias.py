"""Tiresias-style discretized Least-Attained-Service scheduling.

Tiresias (NSDI'19) schedules DL jobs without duration knowledge by
prioritising jobs that have *attained* the least GPU-service
(``gpus × time``), discretized into queues to avoid thrashing: a job starts
in the high-priority queue and is demoted once its attained service crosses
a threshold.  High-queue jobs may preempt low-queue jobs.

This implementation uses the classic two-queue discretization.  Demotion is
checked on a periodic tick (attained service grows while running), and
starvation is avoided by promoting jobs whose queue wait exceeds the
``starvation_timeout``.
"""

from __future__ import annotations

from ..config import require_positive
from ..workload.job import Job, JobState
from .base import ScheduleContext, Scheduler, drain_order, eligible_victims
from .placement.base import PlacementPolicy


class TiresiasScheduler(Scheduler):
    """Two-queue discretized LAS with preemption."""

    name = "tiresias"

    def __init__(
        self,
        placement: PlacementPolicy | None = None,
        queue_threshold_gpu_s: float = 8.0 * 3600.0,
        tick_s: float = 300.0,
        starvation_timeout_s: float = 12.0 * 3600.0,
    ) -> None:
        super().__init__(placement)
        require_positive("queue_threshold_gpu_s", queue_threshold_gpu_s)
        require_positive("tick_s", tick_s)
        require_positive("starvation_timeout_s", starvation_timeout_s)
        self.queue_threshold_gpu_s = queue_threshold_gpu_s
        self.tick_s = tick_s
        self.starvation_timeout_s = starvation_timeout_s
        self._queued_since: dict[str, float] = {}

    def tick_interval(self) -> float | None:
        return self.tick_s

    def on_enqueue(self, job: Job, now: float) -> None:
        self._queued_since[job.job_id] = now

    def on_start(self, job: Job, now: float) -> None:
        self._queued_since.pop(job.job_id, None)

    def on_finish(self, job: Job, now: float) -> None:
        self._queued_since.pop(job.job_id, None)

    # -- queue classification ----------------------------------------------------

    def attained_service(self, job: Job, now: float) -> float:
        """GPU-seconds of service attained, including the live segment."""
        attained = job.gpu_seconds_used
        if job.state is JobState.RUNNING and job.last_start_time is not None:
            attained += (now - job.last_start_time) * job.num_gpus
        return attained

    def queue_index(self, job: Job, now: float) -> int:
        """0 = high priority (little service), 1 = demoted."""
        if self.attained_service(job, now) < self.queue_threshold_gpu_s:
            return 0
        queued_since = self._queued_since.get(job.job_id)
        if queued_since is not None and now - queued_since >= self.starvation_timeout_s:
            return 0  # starvation promotion
        return 1

    # -- scheduling ------------------------------------------------------------------

    def schedule(self, ctx: ScheduleContext) -> None:
        ordered = sorted(
            self.queue,
            key=lambda job: (
                self.queue_index(job, ctx.now),
                self.attained_service(job, ctx.now),
                job.submit_time,
                job.job_id,
            ),
        )
        for job in ordered:
            if job.state is not JobState.QUEUED:
                continue
            placement = self.try_place(ctx, job)
            if placement is None and self.queue_index(job, ctx.now) == 0:
                placement = self._place_with_preemption(ctx, job)
            if placement is not None:
                ctx.start_job(job, placement)

    def _place_with_preemption(self, ctx: ScheduleContext, job: Job):
        """Evict demoted preemptible jobs until *job* fits (or give up)."""
        candidates = [
            running
            for running in ctx.running.values()
            if running.preemptible and self.queue_index_running(running, ctx.now) == 1
        ]
        victims = eligible_victims(ctx, job, candidates)
        evictable_gpus = sum(v.num_gpus for v in victims)
        if evictable_gpus + ctx.cluster.free_gpus < job.num_gpus:
            return None
        for victim in drain_order(victims):
            ctx.preempt_job(victim)
            placement = self.try_place(ctx, job)
            if placement is not None:
                return placement
        return None

    def queue_index_running(self, job: Job, now: float) -> int:
        """Queue index for a *running* job (no starvation promotion)."""
        return 0 if self.attained_service(job, now) < self.queue_threshold_gpu_s else 1
