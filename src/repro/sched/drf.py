"""Dominant Resource Fairness scheduling across users.

DRF (Ghodsi et al., NSDI'11) generalises max-min fairness to multiple
resource types: each user's *dominant share* is the maximum of their shares
of GPUs, CPUs, and memory, and the scheduler repeatedly offers the next
slot to the user with the smallest dominant share.  On a GPU cluster the
dominant resource is almost always the GPU, but CPU-heavy preprocessing
jobs do flip it, which is why the cluster tracks all three.

Shares are recomputed from the live running set each pass (stateless), so
DRF here is progressive-filling over the current queue, not an offline
allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workload.job import Job
from .base import ScheduleContext, Scheduler
from .placement.base import PlacementPolicy


@dataclass(frozen=True)
class _Totals:
    gpus: float
    cpus: float
    memory_gb: float


class DrfScheduler(Scheduler):
    """Progressive-filling DRF over users with queued jobs."""

    name = "drf"

    def __init__(self, placement: PlacementPolicy | None = None) -> None:
        super().__init__(placement)

    @staticmethod
    def _cluster_totals(ctx: ScheduleContext) -> _Totals:
        gpus = cpus = memory = 0.0
        for node in ctx.cluster.nodes.values():
            gpus += node.spec.num_gpus
            cpus += node.spec.cpus
            memory += node.spec.memory_gb
        return _Totals(max(gpus, 1.0), max(cpus, 1.0), max(memory, 1.0))

    @staticmethod
    def _job_vector(job: Job) -> tuple[float, float, float]:
        request = job.request
        return (
            float(request.num_gpus),
            float(request.cpus_per_gpu * request.num_gpus),
            float(request.memory_gb_per_gpu * request.num_gpus),
        )

    def dominant_share(
        self, usage: tuple[float, float, float], totals: _Totals
    ) -> float:
        return max(
            usage[0] / totals.gpus,
            usage[1] / totals.cpus,
            usage[2] / totals.memory_gb,
        )

    def schedule(self, ctx: ScheduleContext) -> None:
        totals = self._cluster_totals(ctx)

        usage: dict[str, tuple[float, float, float]] = {}
        for job in ctx.running.values():
            vector = self._job_vector(job)
            current = usage.get(job.user_id, (0.0, 0.0, 0.0))
            usage[job.user_id] = tuple(c + v for c, v in zip(current, vector))  # type: ignore[assignment]

        pending: dict[str, list[Job]] = {}
        for job in self.queue:
            pending.setdefault(job.user_id, []).append(job)
        for jobs in pending.values():
            jobs.sort(key=lambda j: (j.submit_time, j.job_id))

        # Progressive filling: repeatedly offer to the poorest user.
        active = set(pending)
        while active:
            # The key tie-breaks on the user id itself, a total order, so the
            # min over the set is deterministic despite hash iteration order.
            user = min(
                active,  # simlint: disable=R6
                key=lambda u: (self.dominant_share(usage.get(u, (0.0, 0.0, 0.0)), totals), u),
            )
            job = pending[user][0]
            placement = self.try_place(ctx, job)
            if placement is None:
                active.discard(user)  # this user's head job can't start now
                continue
            ctx.start_job(job, placement)
            vector = self._job_vector(job)
            current = usage.get(user, (0.0, 0.0, 0.0))
            usage[user] = tuple(c + v for c, v in zip(current, vector))  # type: ignore[assignment]
            pending[user].pop(0)
            if not pending[user]:
                active.discard(user)
