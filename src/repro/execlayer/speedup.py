"""Placement- and hardware-sensitive slowdown model.

A trace job's ``duration`` is its wall time under *reference* conditions:
the GPU type it asked for (V100 when indifferent), packed into as few nodes
as its shape allows, all in one rack.  When the scheduler actually places it
somewhere else — slower/faster cards, more nodes, across the spine — the
execution layer stretches or shrinks the remaining work by the ratio of
per-iteration times:

    slowdown = iter_time(actual placement) / iter_time(reference placement)

where ``iter_time = compute / gpu_speed + sync_time(model, shape)`` using
the job's DNN profile (:mod:`repro.workload.models`) and the communication
models (:mod:`repro.execlayer.comm`).  Single-GPU jobs reduce to the pure
hardware-speed ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import Cluster
from ..cluster.gpu import get_gpu_spec
from ..cluster.topology import Locality
from ..errors import ValidationError
from ..workload.job import Job
from ..workload.models import profile_of
from .comm import CommMethod, PlacementShape, shape_from_placement, sync_time_s

#: GPU type assumed when a job expresses no preference.
REFERENCE_GPU = "v100"


@dataclass(frozen=True)
class ExecModelConfig:
    """Knobs of the execution-layer performance model.

    Attributes:
        comm_method: Synchronisation substrate in use cluster-wide.
        hardware_aware: When False, GPU-speed differences are ignored
            (slowdown depends on placement spread only) — used by ablations.
        placement_aware: When False, placement spread is ignored (slowdown
            depends on hardware only).
    """

    comm_method: CommMethod = CommMethod.RING
    hardware_aware: bool = True
    placement_aware: bool = True


class ExecutionModel:
    """Computes slowdown factors for job placements on a cluster."""

    def __init__(self, config: ExecModelConfig | None = None) -> None:
        self.config = config or ExecModelConfig()

    def reference_shape(self, job: Job, nic_gbps: float = 100.0) -> PlacementShape:
        """The ideal placement shape implied by the job's request."""
        request = job.request
        per_node = request.gpus_per_node or request.num_gpus
        per_node = min(per_node, request.num_gpus, 8)
        nodes, remainder = divmod(request.num_gpus, per_node)
        gpus_per_node = [per_node] * nodes + ([remainder] if remainder else [])
        gpu = get_gpu_spec(request.gpu_type or REFERENCE_GPU)
        return PlacementShape(
            gpus_per_node=tuple(gpus_per_node),
            locality=Locality.SAME_NODE if len(gpus_per_node) == 1 else Locality.SAME_RACK,
            intra_node_gbps=gpu.intra_node_gbps,
            nic_gbps=nic_gbps,
            spine_oversubscription=1.0,
        )

    def iteration_time_s(self, job: Job, shape: PlacementShape, gpu_type: str) -> float:
        """Per-iteration wall time for the job on the given shape/hardware."""
        profile = profile_of(job)
        speed = get_gpu_spec(gpu_type).relative_speed if self.config.hardware_aware else 1.0
        compute_s = profile.compute_ms / 1000.0 / speed
        if not self.config.placement_aware or shape.total_gpus == 1:
            sync_s = 0.0
        else:
            sync_s = sync_time_s(profile.gradient_mb, shape, self.config.comm_method)
        return compute_s + sync_s

    def slowdown(self, job: Job, placement: dict[str, int], cluster: Cluster) -> float:
        """Slowdown factor (>0) of running *job* on *placement*.

        1.0 means the placement matches the reference conditions; >1 means
        the job runs slower (remaining work stretches); <1 means faster
        hardware than requested.
        """
        if not placement:
            raise ValidationError(f"empty placement for job {job.job_id}")
        total = sum(placement.values())
        floor = job.elastic_min_gpus if job.elastic else job.num_gpus
        if not floor <= total <= job.num_gpus:
            raise ValidationError(
                f"placement provides {total} GPUs, job {job.job_id} "
                f"accepts [{floor}, {job.num_gpus}]"
            )
        actual_shape = shape_from_placement(placement, cluster)
        gpu_types = {cluster.node(n).spec.gpu_type for n in placement}
        slowest = min(gpu_types, key=lambda t: get_gpu_spec(t).relative_speed)
        reference_gpu = job.request.gpu_type or REFERENCE_GPU
        ref_shape = self.reference_shape(
            job, nic_gbps=min(cluster.node(n).spec.nic_gbps for n in placement)
        )
        actual = self.iteration_time_s(job, actual_shape, slowest)
        reference = self.iteration_time_s(job, ref_shape, reference_gpu)
        if reference <= 0:
            raise ValidationError(f"reference iteration time is zero for {job.job_id}")
        # Data-parallel work rate also scales with replica count: an elastic
        # job granted g < N GPUs processes g/N of the global batch per
        # iteration, stretching wall time by N/g on top of the iteration-
        # time ratio.
        return (actual / reference) * (job.num_gpus / total)


class UnitExecutionModel(ExecutionModel):
    """Degenerate model: every placement runs at slowdown 1.0.

    Used by pure-scheduling experiments (F5–F7) so JCT differences come from
    queueing alone, and by tests that need exact arithmetic.
    """

    def __init__(self) -> None:
        super().__init__(ExecModelConfig(hardware_aware=False, placement_aware=False))

    def slowdown(self, job: Job, placement: dict[str, int], cluster: Cluster) -> float:
        return 1.0
