"""Shared-filesystem dataset staging model.

The cluster serves training data from a networked filesystem ("reliable
networked file system for shared big data storage" in the execution-layer
design).  Before a job's first iteration, its dataset is staged to each of
its nodes' local NVMe cache; repeated runs over the same dataset on the
same node hit the cache and start immediately.  Two effects matter to
end-to-end latency and are modelled here:

* **cold-stage time** — dataset bytes over the per-node staging bandwidth,
  bounded by the filesystem's aggregate bandwidth when many nodes stage
  concurrently (the contention term);
* **node-local cache** — LRU per node with finite capacity; a lab re-running
  experiments on the same data pays the stage once per node, not per job.

The simulator adds the stage time to a job's provisioning delay and
advances/queries the cache through :meth:`SharedFilesystem.stage`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..config import require_positive
from ..ids import NodeId


@dataclass(frozen=True)
class StorageConfig:
    """Parameters of the shared filesystem and node caches.

    Attributes:
        node_stage_gbps: Max per-node staging throughput (NIC/NVMe bound).
        aggregate_gbps: Filesystem backend's total read bandwidth; when
            concurrent stages would exceed it, everyone slows down
            proportionally.
        node_cache_gb: Local cache capacity per node (LRU eviction).
    """

    node_stage_gbps: float = 20.0
    aggregate_gbps: float = 80.0
    node_cache_gb: float = 2000.0

    def __post_init__(self) -> None:
        require_positive("node_stage_gbps", self.node_stage_gbps)
        require_positive("aggregate_gbps", self.aggregate_gbps)
        require_positive("node_cache_gb", self.node_cache_gb)


@dataclass
class SharedFilesystem:
    """Staging-time oracle with per-node LRU caches.

    The model is intentionally coarse in time: a stage's duration is fixed
    when it begins, using the contention level at that instant.  ``load``
    tracks concurrently active stages and is maintained by the simulator
    via :meth:`begin_stage` / :meth:`end_stage`.
    """

    config: StorageConfig = field(default_factory=StorageConfig)
    _cache: dict[NodeId, OrderedDict] = field(default_factory=dict)
    _active_stages: int = 0
    stage_count: int = 0
    cache_hits: int = 0
    bytes_staged_gb: float = 0.0

    def _node_cache(self, node_id: NodeId) -> OrderedDict:
        return self._cache.setdefault(node_id, OrderedDict())

    def is_cached(self, node_id: NodeId, dataset_key: str) -> bool:
        return dataset_key in self._node_cache(node_id)

    def effective_gbps(self, concurrent: int | None = None) -> float:
        """Per-stage bandwidth at the given concurrency level."""
        active = max(1, self._active_stages if concurrent is None else concurrent)
        fair_share = self.config.aggregate_gbps / active
        return min(self.config.node_stage_gbps, fair_share)

    def stage_time_s(self, node_id: NodeId, dataset_key: str, dataset_gb: float) -> float:
        """Seconds to make *dataset_key* available on *node_id* (0 on hit)."""
        if dataset_gb <= 0 or self.is_cached(node_id, dataset_key):
            return 0.0
        return dataset_gb * 8.0 / self.effective_gbps(self._active_stages + 1)

    def stage(self, node_ids: tuple[NodeId, ...], dataset_key: str, dataset_gb: float) -> float:
        """Stage a dataset onto all of a job's nodes; returns max stage time.

        Cache-admits on every node (evicting LRU past capacity) and books
        the statistics.  Gang semantics: the job waits for its slowest
        node.
        """
        if dataset_gb <= 0 or not node_ids:
            return 0.0
        worst = 0.0
        for node_id in node_ids:
            self.stage_count += 1
            if self.is_cached(node_id, dataset_key):
                self.cache_hits += 1
                self._node_cache(node_id).move_to_end(dataset_key)
                continue
            worst = max(worst, self.stage_time_s(node_id, dataset_key, dataset_gb))
            self.bytes_staged_gb += dataset_gb
            self._admit(node_id, dataset_key, dataset_gb)
        return worst

    def _admit(self, node_id: NodeId, dataset_key: str, dataset_gb: float) -> None:
        cache = self._node_cache(node_id)
        cache[dataset_key] = dataset_gb
        cache.move_to_end(dataset_key)
        while sum(cache.values()) > self.config.node_cache_gb and len(cache) > 1:
            cache.popitem(last=False)

    def begin_stage(self) -> None:
        self._active_stages += 1

    def end_stage(self) -> None:
        self._active_stages = max(0, self._active_stages - 1)

    @property
    def hit_rate(self) -> float:
        if self.stage_count == 0:
            return 1.0
        return self.cache_hits / self.stage_count

    def node_cache_contents(self, node_id: NodeId) -> tuple[str, ...]:
        return tuple(self._node_cache(node_id))
