"""Communication-time models for distributed gradient synchronisation.

The execution layer needs to know how long one gradient synchronisation
takes for a given *placement shape* — how many GPUs sit on each node and how
far apart the nodes are.  Four methods are modelled, matching the substrate
options the cluster exposes:

* **ring all-reduce** — hierarchical: reduce inside each node over
  NVLink/PCIe, ring across nodes over the NIC, broadcast back.  Each
  inter-node hop moves ``2·(k−1)/k`` of the gradient, where *k* is the node
  count; cross-rack rings additionally squeeze through the oversubscribed
  spine.
* **tree all-reduce** — reduce+broadcast along a binomial tree:
  ``2·log2(k)`` full-gradient hops; latency-friendlier, bandwidth-worse for
  large *k*.
* **parameter server** — every worker pushes and pulls the full gradient
  through one PS NIC: time scales linearly with worker count.
* **in-network aggregation (INA)** — SmartNIC/switch aggregation (ATP-style):
  one NIC pass regardless of worker count, and the spine penalty vanishes
  because aggregation happens at the leaf.

All functions return seconds and take sizes in MB and bandwidths in Gbit/s.
The absolute numbers are idealised; the experiments (F9) rely only on the
*relative* ordering between localities and methods, which these formulas
capture.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..cluster.topology import FabricSpec, Locality
from ..errors import ValidationError

_MB_TO_GBIT = 8.0 / 1000.0  # 1 MB = 0.008 Gbit


class CommMethod(enum.Enum):
    RING = "ring"
    TREE = "tree"
    PARAMETER_SERVER = "ps"
    IN_NETWORK = "ina"


@dataclass(frozen=True)
class PlacementShape:
    """Topology-relevant shape of one job's placement.

    Attributes:
        gpus_per_node: GPU count on each occupied node (order irrelevant).
        locality: Worst distance class across the occupied nodes.
        intra_node_gbps: Per-GPU bandwidth between same-node peers.
        nic_gbps: Slowest occupied node's uplink bandwidth.
        spine_oversubscription: Fabric oversubscription factor (>= 1),
            applied when ``locality`` is CROSS_RACK.
    """

    gpus_per_node: tuple[int, ...]
    locality: Locality
    intra_node_gbps: float
    nic_gbps: float
    spine_oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if not self.gpus_per_node or any(g <= 0 for g in self.gpus_per_node):
            raise ValidationError("gpus_per_node must be non-empty and positive")
        if self.intra_node_gbps <= 0 or self.nic_gbps <= 0:
            raise ValidationError("bandwidths must be positive")
        if self.spine_oversubscription < 1.0:
            raise ValidationError("spine_oversubscription must be >= 1")

    @property
    def total_gpus(self) -> int:
        return sum(self.gpus_per_node)

    @property
    def num_nodes(self) -> int:
        return len(self.gpus_per_node)

    @property
    def effective_nic_gbps(self) -> float:
        """NIC bandwidth after the spine penalty for cross-rack placements."""
        if self.locality is Locality.CROSS_RACK:
            return self.nic_gbps / self.spine_oversubscription
        return self.nic_gbps


def _intra_node_allreduce_s(model_mb: float, gpus: int, intra_gbps: float) -> float:
    """Ring all-reduce time among GPUs inside one node."""
    if gpus <= 1:
        return 0.0
    volume_gbit = 2.0 * (gpus - 1) / gpus * model_mb * _MB_TO_GBIT
    return volume_gbit / intra_gbps


def ring_allreduce_s(model_mb: float, shape: PlacementShape) -> float:
    """Hierarchical ring all-reduce time in seconds."""
    _check_model(model_mb)
    max_local = max(shape.gpus_per_node)
    local = _intra_node_allreduce_s(model_mb, max_local, shape.intra_node_gbps)
    if shape.num_nodes == 1:
        return local
    k = shape.num_nodes
    inter_gbit = 2.0 * (k - 1) / k * model_mb * _MB_TO_GBIT
    inter = inter_gbit / shape.effective_nic_gbps
    # Intra-node reduce before and broadcast after the inter-node phase.
    return 2.0 * local + inter


def tree_allreduce_s(model_mb: float, shape: PlacementShape) -> float:
    """Binomial-tree all-reduce time in seconds."""
    _check_model(model_mb)
    max_local = max(shape.gpus_per_node)
    local = _intra_node_allreduce_s(model_mb, max_local, shape.intra_node_gbps)
    if shape.num_nodes == 1:
        return local
    hops = 2.0 * math.ceil(math.log2(shape.num_nodes))
    inter = hops * model_mb * _MB_TO_GBIT / shape.effective_nic_gbps
    return 2.0 * local + inter


def parameter_server_s(model_mb: float, shape: PlacementShape) -> float:
    """Central parameter-server synchronisation time in seconds.

    All workers push gradients to and pull parameters from a single server
    whose NIC matches the worker nodes'; its NIC is the bottleneck.
    """
    _check_model(model_mb)
    if shape.total_gpus <= 1:
        return 0.0
    if shape.num_nodes == 1:
        # PS colocated in-node: traffic stays on the GPU interconnect.
        volume_gbit = 2.0 * shape.total_gpus * model_mb * _MB_TO_GBIT
        return volume_gbit / shape.intra_node_gbps
    volume_gbit = 2.0 * shape.num_nodes * model_mb * _MB_TO_GBIT
    return volume_gbit / shape.effective_nic_gbps


def in_network_aggregation_s(model_mb: float, shape: PlacementShape) -> float:
    """SmartNIC/switch in-network aggregation time in seconds.

    The switch aggregates at line rate, so each node sends and receives the
    gradient exactly once, and leaf-level aggregation removes the spine
    penalty.
    """
    _check_model(model_mb)
    max_local = max(shape.gpus_per_node)
    local = _intra_node_allreduce_s(model_mb, max_local, shape.intra_node_gbps)
    if shape.num_nodes == 1:
        return local
    inter = 2.0 * model_mb * _MB_TO_GBIT / shape.nic_gbps  # no spine penalty
    return 2.0 * local + inter


_METHODS = {
    CommMethod.RING: ring_allreduce_s,
    CommMethod.TREE: tree_allreduce_s,
    CommMethod.PARAMETER_SERVER: parameter_server_s,
    CommMethod.IN_NETWORK: in_network_aggregation_s,
}


def sync_time_s(model_mb: float, shape: PlacementShape, method: CommMethod) -> float:
    """Gradient synchronisation time for the given method, in seconds."""
    return _METHODS[method](model_mb, shape)


def _check_model(model_mb: float) -> None:
    if model_mb <= 0:
        raise ValidationError(f"model size must be positive MB, got {model_mb}")


def shape_from_placement(
    placement: dict[str, int],
    cluster,
    fabric: FabricSpec | None = None,
) -> PlacementShape:
    """Build a :class:`PlacementShape` from a placement on a cluster."""
    if not placement:
        raise ValidationError("cannot shape an empty placement")
    nodes = [cluster.node(node_id) for node_id in sorted(placement)]
    locality = cluster.topology.spread([n.node_id for n in nodes])
    fabric = fabric or cluster.topology.fabric
    return PlacementShape(
        gpus_per_node=tuple(placement[n.node_id] for n in nodes),
        locality=locality,
        intra_node_gbps=min(n.spec.gpu_spec.intra_node_gbps for n in nodes),
        nic_gbps=min(n.spec.nic_gbps for n in nodes),
        spine_oversubscription=fabric.oversubscription,
    )
