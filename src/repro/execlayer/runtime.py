"""Execution-layer runtime systems and fail-safe switching.

The Execution Layer of the 4-layer workflow abstraction connects a compiled
task instruction to an *underlying runtime system* — bare-metal launch,
container runtime, or a specialised distributed framework.  More than one
runtime is live at a time; the layer picks per task and, when provisioning
fails, *fail-safe switches* to the next candidate (Table 1 of the TACC
design).

This module models the part that matters to end-to-end task latency and
reliability: per-runtime provisioning time (with image/dependency caching)
and provisioning failure probability, plus the switching chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import require_fraction, require_non_negative
from ..errors import ConfigError, RuntimeSwitchError


@dataclass(frozen=True)
class RuntimeSystem:
    """One underlying runtime the execution layer can provision onto.

    Attributes:
        name: Registry key (e.g. ``"bare"``, ``"container"``, ``"ray"``).
        cold_provision_s: Provisioning time on a node that has no cached
            environment (image pull, dependency install).
        warm_provision_s: Provisioning time when the environment is cached.
        provision_failure_prob: Probability one provisioning attempt fails
            (registry hiccup, image corruption) and triggers a switch.
        supports_multi_node: Whether distributed jobs can run here.
        overhead_factor: Steady-state runtime overhead multiplier on job
            work (containerisation costs a few percent).
    """

    name: str
    cold_provision_s: float
    warm_provision_s: float
    provision_failure_prob: float = 0.0
    supports_multi_node: bool = True
    overhead_factor: float = 1.0

    def __post_init__(self) -> None:
        require_non_negative("cold_provision_s", self.cold_provision_s)
        require_non_negative("warm_provision_s", self.warm_provision_s)
        require_fraction("provision_failure_prob", self.provision_failure_prob)
        if self.warm_provision_s > self.cold_provision_s:
            raise ConfigError(f"runtime {self.name}: warm provision exceeds cold")
        if self.overhead_factor < 1.0:
            raise ConfigError(f"runtime {self.name}: overhead_factor must be >= 1")


#: Default runtime chain, ordered by preference.
DEFAULT_RUNTIMES: tuple[RuntimeSystem, ...] = (
    RuntimeSystem(
        "container",
        cold_provision_s=180.0,
        warm_provision_s=8.0,
        provision_failure_prob=0.02,
        overhead_factor=1.02,
    ),
    RuntimeSystem(
        "bare",
        cold_provision_s=45.0,
        warm_provision_s=3.0,
        provision_failure_prob=0.005,
        overhead_factor=1.0,
    ),
    RuntimeSystem(
        "ray",
        cold_provision_s=240.0,
        warm_provision_s=20.0,
        provision_failure_prob=0.03,
        overhead_factor=1.05,
    ),
)


@dataclass(frozen=True)
class ProvisionResult:
    """Outcome of provisioning one task."""

    runtime: str
    provision_s: float
    attempts: int
    switched: bool
    warm: bool


@dataclass
class RuntimeRegistry:
    """Ordered runtime chain with fail-safe switching and a warm-env cache.

    The warm cache is keyed by ``(runtime, env_key)``: the first task using
    an environment pays the cold cost; later tasks with the same
    environment hash provision warm — the execution-layer counterpart of
    the compiler layer's content cache.
    """

    runtimes: tuple[RuntimeSystem, ...] = DEFAULT_RUNTIMES
    _warm: set[tuple[str, str]] = field(default_factory=set)
    provision_count: int = 0
    switch_count: int = 0

    def __post_init__(self) -> None:
        if not self.runtimes:
            raise ConfigError("runtime registry needs at least one runtime")
        names = [r.name for r in self.runtimes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate runtime names: {names}")

    def get(self, name: str) -> RuntimeSystem:
        for runtime in self.runtimes:
            if runtime.name == name:
                return runtime
        known = [r.name for r in self.runtimes]
        raise ConfigError(f"unknown runtime {name!r}; known: {known}")

    def chain_for(
        self, preferred: str | None = None, multi_node: bool = False
    ) -> tuple[RuntimeSystem, ...]:
        """The fail-safe chain, preferred runtime first, then the rest."""
        chain = [r for r in self.runtimes if r.supports_multi_node or not multi_node]
        if not chain:
            raise RuntimeSwitchError("no runtime supports this task shape")
        if preferred is not None:
            head = self.get(preferred)
            if multi_node and not head.supports_multi_node:
                raise RuntimeSwitchError(
                    f"runtime {preferred!r} does not support multi-node tasks"
                )
            chain = [head] + [r for r in chain if r.name != preferred]
        return tuple(chain)

    def provision(
        self,
        env_key: str,
        rng: np.random.Generator,
        preferred: str | None = None,
        multi_node: bool = False,
    ) -> ProvisionResult:
        """Provision a task, switching runtimes on failure.

        Each runtime in the chain is tried once; a failed attempt still
        costs its provisioning time (the time is spent before the failure
        surfaces).  Raises :class:`RuntimeSwitchError` when the whole chain
        fails.
        """
        chain = self.chain_for(preferred, multi_node)
        elapsed = 0.0
        for attempt, runtime in enumerate(chain, start=1):
            warm = (runtime.name, env_key) in self._warm
            cost = runtime.warm_provision_s if warm else runtime.cold_provision_s
            elapsed += cost
            if rng.uniform() >= runtime.provision_failure_prob:
                self._warm.add((runtime.name, env_key))
                self.provision_count += 1
                self.switch_count += attempt - 1
                return ProvisionResult(
                    runtime=runtime.name,
                    provision_s=elapsed,
                    attempts=attempt,
                    switched=attempt > 1,
                    warm=warm,
                )
        raise RuntimeSwitchError(
            f"all {len(chain)} runtimes failed to provision env {env_key!r}"
        )

    def is_warm(self, runtime: str, env_key: str) -> bool:
        return (runtime, env_key) in self._warm
