"""Execution layer: runtime systems, communication models, slowdown model."""

from .comm import (
    CommMethod,
    PlacementShape,
    in_network_aggregation_s,
    parameter_server_s,
    ring_allreduce_s,
    shape_from_placement,
    sync_time_s,
    tree_allreduce_s,
)
from .runtime import (
    DEFAULT_RUNTIMES,
    ProvisionResult,
    RuntimeRegistry,
    RuntimeSystem,
)
from .storage import SharedFilesystem, StorageConfig
from .speedup import REFERENCE_GPU, ExecModelConfig, ExecutionModel, UnitExecutionModel

__all__ = [
    "DEFAULT_RUNTIMES",
    "REFERENCE_GPU",
    "CommMethod",
    "ExecModelConfig",
    "ExecutionModel",
    "PlacementShape",
    "ProvisionResult",
    "RuntimeRegistry",
    "RuntimeSystem",
    "SharedFilesystem",
    "StorageConfig",
    "UnitExecutionModel",
    "in_network_aggregation_s",
    "parameter_server_s",
    "ring_allreduce_s",
    "shape_from_placement",
    "sync_time_s",
    "tree_allreduce_s",
]
