"""Execution layer: runtime systems, communication models, slowdown model."""

from .comm import (
    CommMethod,
    PlacementShape,
    in_network_aggregation_s,
    parameter_server_s,
    ring_allreduce_s,
    shape_from_placement,
    sync_time_s,
    tree_allreduce_s,
)
from .runtime import (
    DEFAULT_RUNTIMES,
    ProvisionResult,
    RuntimeRegistry,
    RuntimeSystem,
)
from .storage import SharedFilesystem, StorageConfig
from .speedup import REFERENCE_GPU, ExecModelConfig, ExecutionModel, UnitExecutionModel
from .transfer import artifact_fetch_seconds, transfer_seconds

__all__ = [
    "DEFAULT_RUNTIMES",
    "REFERENCE_GPU",
    "CommMethod",
    "ExecModelConfig",
    "ExecutionModel",
    "PlacementShape",
    "ProvisionResult",
    "RuntimeRegistry",
    "RuntimeSystem",
    "SharedFilesystem",
    "StorageConfig",
    "UnitExecutionModel",
    "artifact_fetch_seconds",
    "in_network_aggregation_s",
    "parameter_server_s",
    "ring_allreduce_s",
    "shape_from_placement",
    "sync_time_s",
    "transfer_seconds",
    "tree_allreduce_s",
]
