"""Inter-stage artifact transfer over the leaf–spine fabric.

When a workflow stage starts, the artifacts its upstream stages produced
must reach the nodes it was placed on.  This module prices that movement
from the topology's bandwidth tiers: an artifact written on the consumer's
own node costs nothing (``bandwidth_gbps`` is ``inf`` same-node), one rack
away it moves at the node uplink rate, and across racks at the
oversubscribed spine rate.  The *same* pricing is used by the simulator
(charged as setup head on the consuming attempt) and by the transfer-aware
placement policy's candidate ranking — the policy optimises exactly the
cost the simulation charges.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from ..cluster.topology import Topology
from ..ids import JobId, NodeId
from ..workload.job import Job


def transfer_seconds(
    size_bytes: float,
    source_nodes: Iterable[NodeId],
    dest_nodes: Iterable[NodeId],
    topology: Topology,
) -> float:
    """Seconds to move one artifact from where it was written to the consumer.

    The artifact travels once, over the widest source→destination pair —
    the fetch is staged onto one destination node and fanned out over the
    intra-node/NVLink domain, which the fabric model treats as free.
    Missing endpoints (an upstream that never ran) price as zero.
    """
    if size_bytes <= 0:
        return 0.0
    best = 0.0
    for src in source_nodes:
        for dst in dest_nodes:
            gbps = topology.bandwidth_gbps(src, dst)
            if gbps > best:
                best = gbps
    if best <= 0 or math.isinf(best):
        return 0.0
    return size_bytes * 8.0 / 1e9 / best


def artifact_fetch_seconds(
    job: Job,
    dest_nodes: Iterable[NodeId],
    jobs: Mapping[JobId, Job],
    topology: Topology,
) -> float:
    """Total seconds to fetch every upstream artifact of *job* to *dest_nodes*.

    Fetches are sequential (the staging path is one NIC), so per-upstream
    costs add.  Upstreams without declared artifacts contribute nothing;
    their edge is a pure control dependency.
    """
    destinations = tuple(dest_nodes)
    total = 0.0
    for upstream_id in job.depends_on:
        upstream = jobs.get(upstream_id)
        if upstream is None or upstream.artifact_bytes <= 0:
            continue
        total += transfer_seconds(
            upstream.artifact_bytes, upstream.last_nodes, destinations, topology
        )
    return total
