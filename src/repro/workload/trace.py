"""Trace container with CSV/JSONL round-tripping and summary statistics.

A :class:`Trace` is an ordered list of jobs plus provenance metadata.  The
on-disk formats carry only the *static* trace fields (never runtime state),
so a trace loaded from disk always replays from scratch.  The CSV format is
the interchange format for the characterization experiments (F1–F3); JSONL
preserves nested fields exactly.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from ..errors import TraceError
from .job import FailureCategory, FailurePlan, Job, JobTier, ResourceRequest

_CSV_COLUMNS = [
    "job_id",
    "user_id",
    "lab_id",
    "submit_time",
    "duration",
    "num_gpus",
    "gpus_per_node",
    "gpu_type",
    "cpus_per_gpu",
    "memory_gb_per_gpu",
    "tier",
    "partition",
    "walltime_estimate",
    "interactive",
    "failure_category",
    "failure_at_fraction",
    "elastic_min",
    "dataset_gb",
    "model",
    "name",
    "workflow",
    "depends_on",
    "artifact_bytes",
]

#: Columns a CSV may omit (pre-workflow traces); readers default them.
_OPTIONAL_COLUMNS = {"workflow", "depends_on", "artifact_bytes"}


@dataclass
class Trace:
    """An ordered job trace.

    Jobs are kept sorted by ``(submit_time, job_id)``; construction
    validates id uniqueness so downstream indexing is safe.
    """

    jobs: list[Job]
    name: str = "trace"
    metadata: dict[str, object] = field(default_factory=dict)
    #: Lazy snapshot of the static serialisation rows (see frozen_rows).
    _rows: tuple[dict[str, object], ...] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        ids = [job.job_id for job in self.jobs]
        if len(set(ids)) != len(ids):
            seen: set[str] = set()
            dupes = sorted({i for i in ids if i in seen or seen.add(i)})  # type: ignore[func-returns-value]
            raise TraceError(f"duplicate job ids in trace: {dupes[:5]}")
        self.jobs.sort(key=lambda job: (job.submit_time, job.job_id))

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, index: int) -> Job:
        return self.jobs[index]

    @property
    def span_seconds(self) -> float:
        """Time between first and last submission (0 for empty/singleton)."""
        if len(self.jobs) < 2:
            return 0.0
        return self.jobs[-1].submit_time - self.jobs[0].submit_time

    @property
    def total_gpu_seconds_requested(self) -> float:
        return sum(job.duration * job.num_gpus for job in self.jobs)

    def filter(self, predicate: Callable[[Job], bool], name: str | None = None) -> "Trace":
        """New trace with the jobs satisfying *predicate* (jobs shared)."""
        return Trace(
            [job for job in self.jobs if predicate(job)],
            name=name or f"{self.name}-filtered",
            metadata=dict(self.metadata),
        )

    def head(self, n: int) -> "Trace":
        return Trace(self.jobs[:n], name=f"{self.name}-head{n}", metadata=dict(self.metadata))

    def users(self) -> tuple[str, ...]:
        return tuple(sorted({job.user_id for job in self.jobs}))

    def labs(self) -> tuple[str, ...]:
        return tuple(sorted({job.lab_id for job in self.jobs}))

    # -- characterization helpers (F1–F3) -------------------------------------

    def gpu_demand_histogram(self) -> dict[int, int]:
        """Job count per GPU-demand value."""
        histogram: dict[int, int] = {}
        for job in self.jobs:
            histogram[job.num_gpus] = histogram.get(job.num_gpus, 0) + 1
        return dict(sorted(histogram.items()))

    def gpu_hours_by_demand(self) -> dict[int, float]:
        """GPU-hours requested per GPU-demand value."""
        hours: dict[int, float] = {}
        for job in self.jobs:
            hours[job.num_gpus] = (
                hours.get(job.num_gpus, 0.0) + job.duration * job.num_gpus / 3600.0
            )
        return dict(sorted(hours.items()))

    def durations(self) -> np.ndarray:
        return np.array([job.duration for job in self.jobs], dtype=float)

    def submissions_per_hour(self) -> dict[int, int]:
        """Job count per absolute hour-of-trace (F1 diurnal series)."""
        counts: dict[int, int] = {}
        for job in self.jobs:
            hour = int(job.submit_time // 3600)
            counts[hour] = counts.get(hour, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict[str, float]:
        """Headline numbers used by reports and tests."""
        if not self.jobs:
            return {"jobs": 0.0}
        durations = self.durations()
        demands = np.array([job.num_gpus for job in self.jobs], dtype=float)
        return {
            "jobs": float(len(self.jobs)),
            "users": float(len(self.users())),
            "labs": float(len(self.labs())),
            "span_days": self.span_seconds / 86400.0,
            "gpu_hours": self.total_gpu_seconds_requested / 3600.0,
            "duration_p50_min": float(np.percentile(durations, 50)) / 60.0,
            "duration_p99_hours": float(np.percentile(durations, 99)) / 3600.0,
            "mean_gpus": float(demands.mean()),
            "single_gpu_fraction": float((demands == 1).mean()),
        }

    # -- serialisation ----------------------------------------------------------

    def frozen_rows(self) -> tuple[dict[str, object], ...]:
        """The trace's static fields as serialisation rows, computed once.

        This is the single row form shared by replay copies
        (:func:`repro.experiments.common.fresh_trace_copy`), the sweep
        engine's worker shipping, and its result cache: serialising each
        job once and rehydrating per consumer replaces the old
        serialize+deserialize round-trip per compared policy.

        The snapshot is taken on first call — mutate static job fields
        (e.g. ``assign_models``) *before* handing the trace to anything
        that replays it.  Runtime state is never captured, so every
        rehydrated copy starts pristine.
        """
        if self._rows is None:
            self._rows = tuple(_job_to_row(job) for job in self.jobs)
        return self._rows

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[dict[str, object]],
        name: str = "trace",
        metadata: dict[str, object] | None = None,
    ) -> "Trace":
        """Rebuild a trace from serialisation rows (inverse of frozen_rows)."""
        return cls(
            [_job_from_row(row) for row in rows],
            name=name,
            metadata=dict(metadata or {}),
        )

    def to_csv(self, path: str | Path) -> None:
        with Path(path).open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=_CSV_COLUMNS)
            writer.writeheader()
            for job in self.jobs:
                writer.writerow(_job_to_row(job))

    @classmethod
    def from_csv(cls, path: str | Path, name: str | None = None) -> "Trace":
        path = Path(path)
        jobs: list[Job] = []
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            missing = set(_CSV_COLUMNS) - _OPTIONAL_COLUMNS - set(reader.fieldnames or [])
            if missing:
                raise TraceError(f"trace CSV {path} is missing columns: {sorted(missing)}")
            for line_number, row in enumerate(reader, start=2):
                try:
                    jobs.append(_job_from_row(row))
                except (ValueError, KeyError) as exc:
                    raise TraceError(f"{path}:{line_number}: bad trace row: {exc}") from exc
        return cls(jobs, name=name or path.stem)

    def to_jsonl(self, path: str | Path) -> None:
        with Path(path).open("w") as handle:
            header = {"trace": self.name, "metadata": self.metadata}
            handle.write(json.dumps(header) + "\n")
            for job in self.jobs:
                handle.write(json.dumps(_job_to_row(job)) + "\n")

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "Trace":
        path = Path(path)
        jobs: list[Job] = []
        name = path.stem
        metadata: dict[str, object] = {}
        with path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
                if line_number == 1 and "trace" in record:
                    name = str(record["trace"])
                    metadata = dict(record.get("metadata", {}))
                    continue
                try:
                    jobs.append(_job_from_row(record))
                except (ValueError, KeyError) as exc:
                    raise TraceError(f"{path}:{line_number}: bad trace record: {exc}") from exc
        return cls(jobs, name=name, metadata=metadata)


def _job_to_row(job: Job) -> dict[str, object]:
    plan = job.failure_plan
    return {
        "job_id": job.job_id,
        "user_id": job.user_id,
        "lab_id": job.lab_id,
        "submit_time": job.submit_time,
        "duration": job.duration,
        "num_gpus": job.request.num_gpus,
        "gpus_per_node": "" if job.request.gpus_per_node is None else job.request.gpus_per_node,
        "gpu_type": job.request.gpu_type or "",
        "cpus_per_gpu": job.request.cpus_per_gpu,
        "memory_gb_per_gpu": job.request.memory_gb_per_gpu,
        "tier": job.tier.value,
        "partition": job.partition or "",
        "walltime_estimate": job.walltime_estimate,
        "interactive": int(job.interactive),
        "failure_category": plan.category.value if plan else "",
        "failure_at_fraction": plan.at_fraction if plan else "",
        "elastic_min": "" if job.elastic_min_gpus is None else job.elastic_min_gpus,
        "dataset_gb": job.dataset_gb,
        "model": job.model_name,
        "name": job.name,
        "workflow": job.workflow_id or "",
        "depends_on": ";".join(job.depends_on),
        "artifact_bytes": job.artifact_bytes,
    }


def _job_from_row(row: dict[str, object]) -> Job:
    def text(key: str) -> str:
        value = row.get(key, "")
        return "" if value is None else str(value)

    plan = None
    if text("failure_category"):
        plan = FailurePlan(
            category=FailureCategory(text("failure_category")),
            at_fraction=float(text("failure_at_fraction")),
        )
    gpus_per_node = text("gpus_per_node")
    return Job(
        job_id=text("job_id"),
        user_id=text("user_id"),
        lab_id=text("lab_id"),
        submit_time=float(text("submit_time")),
        duration=float(text("duration")),
        request=ResourceRequest(
            num_gpus=int(float(text("num_gpus"))),
            gpus_per_node=int(float(gpus_per_node)) if gpus_per_node else None,
            gpu_type=text("gpu_type") or None,
            cpus_per_gpu=int(float(text("cpus_per_gpu") or 4)),
            memory_gb_per_gpu=float(text("memory_gb_per_gpu") or 32.0),
        ),
        tier=JobTier(text("tier") or "guaranteed"),
        partition=text("partition") or None,
        walltime_estimate=float(text("walltime_estimate")) if text("walltime_estimate") else None,
        interactive=bool(int(float(text("interactive") or 0))),
        failure_plan=plan,
        elastic_min_gpus=int(float(text("elastic_min"))) if text("elastic_min") else None,
        dataset_gb=float(text("dataset_gb") or 0.0),
        model_name=text("model"),
        name=text("name"),
        workflow_id=text("workflow") or None,
        depends_on=tuple(d for d in text("depends_on").split(";") if d),
        artifact_bytes=float(text("artifact_bytes") or 0.0),
    )
