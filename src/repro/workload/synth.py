"""Synthetic trace generation calibrated to campus ML cluster workloads.

The paper's evaluation replays two years of production traces that are not
public, so this module synthesizes statistically equivalent ones.  What the
scheduling experiments depend on — and what the generator therefore models
explicitly — is:

* **arrival process**: non-homogeneous Poisson with a diurnal profile
  (campus users submit mid-morning, mid-afternoon, and a student-driven
  late-evening bump) and a weekend trough;
* **GPU demand**: power-of-two mass heavily skewed to single-GPU jobs by
  *count*, while multi-GPU jobs dominate GPU-*hours*;
* **duration**: log-normal per demand class with a heavy tail (median in
  minutes, p99 in days), wider jobs running longer;
* **user structure**: labs with Zipf-skewed user activity, driving the
  fairness and quota experiments;
* **tiers**: a guaranteed/opportunistic mix matching the cluster's
  two-tier quota design;
* **intrinsic failures**: a fraction of jobs scripted to fail (user error
  early, OOM mid-run), matching published failure analyses.

Each named preset (:func:`tacc_campus`, :func:`philly_like`,
:func:`helios_like`) is one parameterisation; all generation is driven by a
single :class:`numpy.random.Generator` so a seed fully determines a trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..config import require_fraction, require_positive
from ..errors import ConfigError
from .job import FailureCategory, FailurePlan, Job, JobTier, ResourceRequest
from .trace import Trace

#: Hour-of-day submission weights observed on campus: quiet overnight,
#: morning and afternoon work peaks, and an evening bump from students.
CAMPUS_DIURNAL = (
    0.25, 0.18, 0.14, 0.10, 0.08, 0.10,  # 00-05
    0.20, 0.35, 0.60, 0.90, 1.20, 1.30,  # 06-11
    1.10, 1.15, 1.35, 1.40, 1.30, 1.20,  # 12-17
    1.00, 0.95, 1.05, 1.10, 0.80, 0.45,  # 18-23
)


@dataclass(frozen=True)
class DurationModel:
    """Log-normal duration per GPU-demand class.

    ``median_minutes`` maps a demand threshold to the class median: a job
    with ``n`` GPUs uses the entry with the largest key ``<= n``.  ``sigma``
    is the log-space standard deviation (the tail weight).
    """

    median_minutes: dict[int, float] = field(
        default_factory=lambda: {1: 13.0, 2: 22.0, 4: 38.0, 8: 80.0, 16: 160.0, 32: 280.0}
    )
    sigma: float = 1.65
    min_seconds: float = 20.0
    max_seconds: float = 7.0 * 86400.0

    def __post_init__(self) -> None:
        if not self.median_minutes:
            raise ConfigError("DurationModel needs at least one median entry")
        if 1 not in self.median_minutes:
            raise ConfigError("DurationModel.median_minutes must cover demand 1")
        require_positive("DurationModel.sigma", self.sigma)
        if self.max_seconds <= self.min_seconds:
            raise ConfigError("DurationModel: max_seconds must exceed min_seconds")

    def median_for(self, num_gpus: int) -> float:
        keys = [k for k in self.median_minutes if k <= num_gpus]
        return self.median_minutes[max(keys)]

    def sample(self, num_gpus: int, rng: np.random.Generator) -> float:
        median_s = self.median_for(num_gpus) * 60.0
        value = float(rng.lognormal(mean=np.log(median_s), sigma=self.sigma))
        return float(np.clip(value, self.min_seconds, self.max_seconds))


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Full parameterisation of a synthetic trace."""

    days: float = 7.0
    jobs_per_day: float = 500.0
    diurnal_profile: tuple[float, ...] = CAMPUS_DIURNAL
    weekend_factor: float = 0.45
    start_weekday: int = 0  # 0 = Monday, so days 5,6 of each week are weekend
    #: Optional per-day volume multipliers, cycled over the trace — models
    #: semester seasonality such as the pre-deadline surge (see
    #: :func:`deadline_cycle`).  Empty = flat.
    daily_seasonality: tuple[float, ...] = ()

    gpu_demand_pmf: dict[int, float] = field(
        default_factory=lambda: {1: 0.55, 2: 0.15, 4: 0.12, 8: 0.10, 16: 0.05, 32: 0.02, 64: 0.01}
    )
    duration: DurationModel = DurationModel()
    gpus_per_node_cap: int = 8

    num_labs: int = 12
    mean_users_per_lab: float = 4.0
    user_activity_zipf: float = 1.3

    guaranteed_fraction: float = 0.55
    interactive_fraction: float = 0.15
    interactive_max_minutes: float = 90.0

    gpu_type_preferences: dict[str, float] = field(
        default_factory=lambda: {"": 0.70, "a100-80": 0.10, "v100": 0.10, "rtx3090": 0.10}
    )

    walltime_overestimate_mean: float = 2.5
    walltime_overestimate_sigma: float = 0.6

    failure_fraction: float = 0.12
    failure_user_error_share: float = 0.62
    #: Fraction of non-interactive multi-GPU jobs submitted as elastic
    #: (resizable down to a quarter of their request, preemptible).
    elastic_fraction: float = 0.0
    #: Dataset size distribution (log-normal, GB) mounted by training jobs.
    dataset_gb_median: float = 12.0
    dataset_gb_sigma: float = 1.4
    name: str = "synthetic"

    def __post_init__(self) -> None:
        require_positive("days", self.days)
        require_positive("jobs_per_day", self.jobs_per_day)
        if len(self.diurnal_profile) != 24:
            raise ConfigError("diurnal_profile must have 24 hourly weights")
        if any(w < 0 for w in self.diurnal_profile) or not any(self.diurnal_profile):
            raise ConfigError("diurnal_profile weights must be non-negative, not all zero")
        require_fraction("weekend_factor", self.weekend_factor)
        if not 0 <= self.start_weekday <= 6:
            raise ConfigError("start_weekday must be in [0, 6]")
        if any(m < 0 for m in self.daily_seasonality):
            raise ConfigError("daily_seasonality multipliers must be non-negative")
        if not self.gpu_demand_pmf:
            raise ConfigError("gpu_demand_pmf must be non-empty")
        if any(d <= 0 for d in self.gpu_demand_pmf):
            raise ConfigError("gpu demands must be positive")
        total = sum(self.gpu_demand_pmf.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(f"gpu_demand_pmf must sum to 1, sums to {total}")
        require_positive("num_labs", self.num_labs)
        require_positive("mean_users_per_lab", self.mean_users_per_lab)
        require_positive("user_activity_zipf", self.user_activity_zipf)
        require_fraction("guaranteed_fraction", self.guaranteed_fraction)
        require_fraction("interactive_fraction", self.interactive_fraction)
        require_fraction("failure_fraction", self.failure_fraction)
        require_fraction("failure_user_error_share", self.failure_user_error_share)
        require_fraction("elastic_fraction", self.elastic_fraction)
        require_positive("dataset_gb_median", self.dataset_gb_median)
        require_positive("dataset_gb_sigma", self.dataset_gb_sigma)
        type_total = sum(self.gpu_type_preferences.values())
        if abs(type_total - 1.0) > 1e-6:
            raise ConfigError("gpu_type_preferences must sum to 1")


@dataclass(frozen=True)
class _UserPool:
    users: tuple[str, ...]
    labs: tuple[str, ...]  # lab of each user, aligned with `users`
    weights: np.ndarray  # activity probability of each user


class TraceSynthesizer:
    """Generates a :class:`Trace` from a :class:`SyntheticTraceConfig`.

    >>> trace = TraceSynthesizer(tacc_campus(days=1), seed=0).generate()
    >>> len(trace) > 0
    True
    """

    def __init__(self, config: SyntheticTraceConfig, seed: int | np.random.Generator = 0):
        self.config = config
        self.rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._pool = self._build_user_pool()

    def _build_user_pool(self) -> _UserPool:
        cfg = self.config
        users: list[str] = []
        labs: list[str] = []
        for lab_index in range(cfg.num_labs):
            lab = f"lab-{lab_index:02d}"
            count = max(1, int(self.rng.poisson(cfg.mean_users_per_lab)))
            for user_index in range(count):
                users.append(f"user-{lab_index:02d}-{user_index:02d}")
                labs.append(lab)
        ranks = np.arange(1, len(users) + 1, dtype=float)
        weights = ranks ** (-cfg.user_activity_zipf)
        order = self.rng.permutation(len(users))  # decouple rank from lab order
        weights = weights[np.argsort(order)]
        weights /= weights.sum()
        return _UserPool(tuple(users), tuple(labs), weights)

    # -- arrival process -----------------------------------------------------

    def _hourly_rates(self) -> np.ndarray:
        """Expected submissions for every hour of the trace."""
        cfg = self.config
        hours = int(np.ceil(cfg.days * 24))
        profile = np.asarray(cfg.diurnal_profile, dtype=float)
        profile = profile / profile.mean()  # normalise so daily total is jobs_per_day
        rates = np.empty(hours)
        for hour in range(hours):
            day = hour // 24
            weekday = (cfg.start_weekday + day) % 7
            day_factor = cfg.weekend_factor if weekday >= 5 else 1.0
            if cfg.daily_seasonality:
                day_factor *= cfg.daily_seasonality[day % len(cfg.daily_seasonality)]
            rates[hour] = cfg.jobs_per_day / 24.0 * profile[hour % 24] * day_factor
        return rates

    def _sample_arrivals(self) -> np.ndarray:
        """Non-homogeneous Poisson arrivals over the trace horizon."""
        rates = self._hourly_rates()
        times: list[float] = []
        for hour, rate in enumerate(rates):
            count = int(self.rng.poisson(rate))
            if count:
                times.extend(hour * 3600.0 + self.rng.uniform(0.0, 3600.0, size=count))
        arrivals = np.sort(np.asarray(times))
        horizon = self.config.days * 86400.0
        return arrivals[arrivals < horizon]

    # -- per-job fields ------------------------------------------------------

    def _sample_demand(self) -> int:
        demands = list(self.config.gpu_demand_pmf)
        probs = list(self.config.gpu_demand_pmf.values())
        return int(self.rng.choice(demands, p=probs))

    def _sample_gpu_type(self) -> str | None:
        types = list(self.config.gpu_type_preferences)
        probs = list(self.config.gpu_type_preferences.values())
        choice = str(self.rng.choice(types, p=probs))
        return choice or None

    def _sample_walltime_estimate(self, duration: float) -> float:
        factor = float(
            self.rng.lognormal(
                mean=np.log(self.config.walltime_overestimate_mean),
                sigma=self.config.walltime_overestimate_sigma,
            )
        )
        return duration * max(1.0, factor)

    def _sample_failure_plan(self) -> FailurePlan | None:
        cfg = self.config
        if self.rng.uniform() >= cfg.failure_fraction:
            return None
        if self.rng.uniform() < cfg.failure_user_error_share:
            # User errors (bad path, syntax, bad config) surface early.
            return FailurePlan(FailureCategory.USER_ERROR, float(self.rng.beta(1.2, 20.0)) or 0.01)
        # OOM and similar runtime failures strike anywhere mid-run.
        return FailurePlan(FailureCategory.OOM, float(np.clip(self.rng.uniform(0.05, 0.95), 0.01, 1.0)))

    def generate(self) -> Trace:
        cfg = self.config
        arrivals = self._sample_arrivals()
        jobs: list[Job] = []
        user_indices = self.rng.choice(
            len(self._pool.users), size=len(arrivals), p=self._pool.weights
        )
        for index, (submit_time, user_index) in enumerate(zip(arrivals, user_indices)):
            interactive = bool(self.rng.uniform() < cfg.interactive_fraction)
            if interactive:
                num_gpus = int(self.rng.choice([1, 1, 1, 2]))
                duration = float(
                    np.clip(
                        self.rng.lognormal(np.log(12 * 60.0), 0.9),
                        60.0,
                        cfg.interactive_max_minutes * 60.0,
                    )
                )
            else:
                num_gpus = self._sample_demand()
                duration = cfg.duration.sample(num_gpus, self.rng)
            tier = (
                JobTier.GUARANTEED
                if self.rng.uniform() < cfg.guaranteed_fraction
                else JobTier.OPPORTUNISTIC
            )
            elastic_min = None
            preemptible = None
            if (
                not interactive
                and num_gpus >= 4
                and self.rng.uniform() < cfg.elastic_fraction
            ):
                elastic_min = max(1, num_gpus // 4)
                preemptible = True
            dataset_gb = 0.0
            if not interactive:
                dataset_gb = float(
                    self.rng.lognormal(np.log(cfg.dataset_gb_median), cfg.dataset_gb_sigma)
                )
            request = ResourceRequest(
                num_gpus=num_gpus,
                gpus_per_node=min(num_gpus, cfg.gpus_per_node_cap)
                if num_gpus > cfg.gpus_per_node_cap
                else None,
                gpu_type=self._sample_gpu_type(),
                cpus_per_gpu=int(self.rng.choice([2, 4, 4, 8])),
                memory_gb_per_gpu=float(self.rng.choice([16.0, 32.0, 32.0, 64.0])),
            )
            jobs.append(
                Job(
                    job_id=f"job-{index:06d}",
                    user_id=self._pool.users[user_index],
                    lab_id=self._pool.labs[user_index],
                    request=request,
                    submit_time=float(submit_time),
                    duration=duration,
                    tier=tier,
                    walltime_estimate=self._sample_walltime_estimate(duration),
                    interactive=interactive,
                    preemptible=preemptible,
                    failure_plan=self._sample_failure_plan(),
                    elastic_min_gpus=elastic_min,
                    dataset_gb=dataset_gb,
                    name=f"{'notebook' if interactive else 'train'}-{index}",
                )
            )
        return Trace(jobs, name=cfg.name, metadata={"config": cfg.name, "days": cfg.days})


def expected_gpu_seconds_per_job(
    config: SyntheticTraceConfig, samples: int = 4000, seed: int = 12345
) -> float:
    """Monte-Carlo estimate of mean GPU-seconds demanded per job.

    Used by :func:`calibrate_jobs_per_day` to set offered load relative to
    cluster capacity; the heavy-tailed duration model makes closed forms
    unreliable once clipping kicks in, so we sample.
    """
    rng = np.random.default_rng(seed)
    demands = np.array(list(config.gpu_demand_pmf), dtype=int)
    probs = np.array(list(config.gpu_demand_pmf.values()))
    total = 0.0
    for _ in range(samples):
        if rng.uniform() < config.interactive_fraction:
            gpus = int(rng.choice([1, 1, 1, 2]))
            duration = float(
                np.clip(
                    rng.lognormal(np.log(12 * 60.0), 0.9),
                    60.0,
                    config.interactive_max_minutes * 60.0,
                )
            )
        else:
            gpus = int(rng.choice(demands, p=probs))
            duration = config.duration.sample(gpus, rng)
        total += gpus * duration
    return total / samples


def calibrate_jobs_per_day(
    config: SyntheticTraceConfig,
    total_gpus: int,
    target_load: float,
    seed: int = 12345,
) -> float:
    """Jobs/day so offered load ≈ ``target_load`` × cluster GPU capacity.

    ``target_load`` is offered GPU-seconds divided by capacity GPU-seconds;
    values near 1.0 saturate the cluster, which is where scheduling policy
    differences show.
    """
    require_positive("total_gpus", total_gpus)
    require_positive("target_load", target_load)
    per_job = expected_gpu_seconds_per_job(config, seed=seed)
    capacity_per_day = total_gpus * 86400.0
    return target_load * capacity_per_day / per_job


def with_load(
    config: SyntheticTraceConfig,
    total_gpus: int,
    target_load: float,
    seed: int = 12345,
) -> SyntheticTraceConfig:
    """Copy of *config* with ``jobs_per_day`` calibrated to the target load."""
    return replace(
        config,
        jobs_per_day=calibrate_jobs_per_day(config, total_gpus, target_load, seed=seed),
    )


def deadline_cycle(
    cycle_days: int = 28, surge_days: int = 5, surge_factor: float = 2.2
) -> tuple[float, ...]:
    """A seasonality cycle with a pre-deadline surge.

    Campus workloads spike in the days before conference deadlines: the
    last ``surge_days`` of every ``cycle_days`` run at ``surge_factor``×
    volume, the rest slightly below 1 so the cycle's mean stays 1.0 (the
    calibrated load is then the *average*, with surges exceeding it).
    """
    if not 0 < surge_days < cycle_days:
        raise ConfigError("surge_days must be in (0, cycle_days)")
    if surge_factor <= 1.0:
        raise ConfigError("surge_factor must exceed 1")
    quiet_days = cycle_days - surge_days
    quiet_factor = (cycle_days - surge_days * surge_factor) / quiet_days
    if quiet_factor <= 0:
        raise ConfigError("surge too large: quiet days would have negative volume")
    return tuple([quiet_factor] * quiet_days + [surge_factor] * surge_days)


# --------------------------------------------------------------------------
# Presets
# --------------------------------------------------------------------------


def tacc_campus(days: float = 7.0, jobs_per_day: float = 500.0, **overrides) -> SyntheticTraceConfig:
    """The default campus-cluster workload: mixed labs, two tiers, diurnal."""
    return replace(
        SyntheticTraceConfig(days=days, jobs_per_day=jobs_per_day, name="tacc-campus"),
        **overrides,
    )


def philly_like(days: float = 7.0, jobs_per_day: float = 700.0, **overrides) -> SyntheticTraceConfig:
    """A Philly-trace-flavoured mix: more single-GPU jobs, longer tail."""
    base = SyntheticTraceConfig(
        days=days,
        jobs_per_day=jobs_per_day,
        gpu_demand_pmf={1: 0.70, 2: 0.09, 4: 0.09, 8: 0.07, 16: 0.03, 32: 0.02},
        duration=DurationModel(
            median_minutes={1: 10.0, 2: 20.0, 4: 60.0, 8: 180.0, 16: 420.0},
            sigma=2.1,
        ),
        guaranteed_fraction=0.8,
        interactive_fraction=0.08,
        name="philly-like",
    )
    return replace(base, **overrides)


def helios_like(days: float = 7.0, jobs_per_day: float = 900.0, **overrides) -> SyntheticTraceConfig:
    """A Helios-flavoured mix: bursty short jobs, strong diurnality."""
    base = SyntheticTraceConfig(
        days=days,
        jobs_per_day=jobs_per_day,
        gpu_demand_pmf={1: 0.48, 2: 0.20, 4: 0.14, 8: 0.12, 16: 0.04, 32: 0.02},
        duration=DurationModel(
            median_minutes={1: 6.0, 2: 12.0, 4: 30.0, 8: 75.0, 16: 200.0},
            sigma=1.7,
        ),
        weekend_factor=0.35,
        interactive_fraction=0.22,
        name="helios-like",
    )
    return replace(base, **overrides)


def synthesize(
    preset: str = "tacc-campus",
    days: float = 7.0,
    seed: int = 0,
    **overrides,
) -> Trace:
    """One-call trace synthesis by preset name."""
    factories = {
        "tacc-campus": tacc_campus,
        "philly-like": philly_like,
        "helios-like": helios_like,
    }
    try:
        factory = factories[preset]
    except KeyError:
        raise ConfigError(
            f"unknown preset {preset!r}; known presets: {sorted(factories)}"
        ) from None
    config = factory(days=days, **overrides)
    return TraceSynthesizer(config, seed=seed).generate()
