"""Workload model: jobs, traces, synthesis, and DNN model profiles."""

from .adapters import load_public_trace
from .fleet import FleetTraceSynthesizer, fleet_trace
from .job import (
    FailureCategory,
    FailurePlan,
    Job,
    JobState,
    JobTier,
    ResourceRequest,
)
from .models import (
    MODEL_CATALOG,
    ModelProfile,
    assign_models,
    default_profile_for,
    get_model_profile,
    profile_of,
)
from .pipelines import (
    PipelineSynthesizer,
    PipelineTraceConfig,
    pipeline_trace,
)
from .synth import (
    CAMPUS_DIURNAL,
    calibrate_jobs_per_day,
    deadline_cycle,
    expected_gpu_seconds_per_job,
    with_load,
    DurationModel,
    SyntheticTraceConfig,
    TraceSynthesizer,
    helios_like,
    philly_like,
    synthesize,
    tacc_campus,
)
from .trace import Trace

__all__ = [
    "CAMPUS_DIURNAL",
    "MODEL_CATALOG",
    "DurationModel",
    "FailureCategory",
    "FailurePlan",
    "FleetTraceSynthesizer",
    "Job",
    "JobState",
    "JobTier",
    "ModelProfile",
    "PipelineSynthesizer",
    "PipelineTraceConfig",
    "ResourceRequest",
    "SyntheticTraceConfig",
    "Trace",
    "TraceSynthesizer",
    "assign_models",
    "load_public_trace",
    "calibrate_jobs_per_day",
    "deadline_cycle",
    "expected_gpu_seconds_per_job",
    "default_profile_for",
    "fleet_trace",
    "get_model_profile",
    "helios_like",
    "philly_like",
    "pipeline_trace",
    "profile_of",
    "synthesize",
    "tacc_campus",
    "with_load",
]
