"""Job model and lifecycle state machine.

A :class:`Job` is the unit the scheduler reasons about: a resource request
plus service-time semantics.  ``duration`` is the job's *work* — the wall
time it needs on its requested GPUs at reference speed under ideal placement.
The execution layer stretches that by a slowdown factor for slower GPU types
or spread-out placements, and preemption checkpoints the remaining work, so
a job's lifetime can span several run attempts.

State machine (enforced by the transition methods)::

    QUEUED ──start──▶ RUNNING ──complete──▶ COMPLETED
      ▲                  │ │ \──fail──▶ FAILED
      └────requeue───────┘ └──kill──▶ KILLED
           (preempt / node failure)

Terminal states are COMPLETED, FAILED and KILLED.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..errors import JobStateError, ValidationError
from ..ids import JobId, LabId, UserId


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    KILLED = "killed"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.KILLED)


class JobTier(enum.Enum):
    """Access tiers of the campus cluster's quota model.

    GUARANTEED jobs draw on a lab's paid/granted quota and may preempt;
    OPPORTUNISTIC jobs run free-of-charge on idle GPUs and absorb
    preemptions.
    """

    GUARANTEED = "guaranteed"
    OPPORTUNISTIC = "opportunistic"


class FailureCategory(enum.Enum):
    """Taxonomy used by the operational failure analysis (T3)."""

    USER_ERROR = "user_error"  # bad code/config; fails early
    OOM = "oom"  # GPU memory exhaustion; fails mid-run
    HARDWARE = "hardware"  # node/GPU fault; externally injected
    PREEMPTION_LIMIT = "preemption_limit"  # too many preemptions


@dataclass(frozen=True, slots=True)
class ResourceRequest:
    """What a job asks for.

    Attributes:
        num_gpus: Total GPUs across all nodes.
        gpus_per_node: Max GPUs taken from one node; ``None`` lets the
            placement policy pack up to full nodes.  Multi-node jobs are
            gang-scheduled: all GPUs start together or not at all.
        gpu_type: Required GPU catalogue key, or ``None`` for any type.
        cpus_per_gpu: Host cores pinned per GPU.
        memory_gb_per_gpu: Host memory per GPU.
        allowed_nodes: Placement restricted to these nodes (``None`` = any).
            Set by the simulator when the job routes through a partition;
            not a user-facing field and not serialised with traces.
    """

    num_gpus: int
    gpus_per_node: int | None = None
    gpu_type: str | None = None
    cpus_per_gpu: int = 4
    memory_gb_per_gpu: float = 32.0
    allowed_nodes: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValidationError(f"num_gpus must be positive, got {self.num_gpus}")
        if self.gpus_per_node is not None:
            if self.gpus_per_node <= 0:
                raise ValidationError("gpus_per_node must be positive")
            if self.num_gpus % self.gpus_per_node and self.num_gpus > self.gpus_per_node:
                raise ValidationError(
                    f"num_gpus={self.num_gpus} is not a multiple of "
                    f"gpus_per_node={self.gpus_per_node}"
                )
        if self.cpus_per_gpu < 0 or self.memory_gb_per_gpu < 0:
            raise ValidationError("per-GPU CPU/memory requests must be non-negative")

    @property
    def num_nodes_min(self) -> int:
        """Minimum node count implied by the per-node cap (1 when uncapped)."""
        if self.gpus_per_node is None:
            return 1
        return -(-self.num_gpus // self.gpus_per_node)


@dataclass(frozen=True, slots=True)
class FailurePlan:
    """Intrinsic failure scripted into a trace job (user error, OOM).

    The job fails after completing ``at_fraction`` of its work on the
    attempt that crosses that point.
    """

    category: FailureCategory
    at_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.at_fraction <= 1.0:
            raise ValidationError("FailurePlan.at_fraction must be in (0, 1]")


@dataclass(slots=True)
class Job:
    """One schedulable job with live lifecycle state.

    Static trace fields come first; fields below the comment are runtime
    state mutated only through the transition methods.

    ``slots=True`` matters at fleet scale: a million-job trace holds a
    million live ``Job`` objects, and slots cut both per-instance memory
    (no ``__dict__``) and construction time by roughly 3x.
    """

    job_id: JobId
    user_id: UserId
    lab_id: LabId
    request: ResourceRequest
    submit_time: float
    duration: float  # reference service time, seconds
    tier: JobTier = JobTier.GUARANTEED
    partition: str | None = None
    walltime_estimate: float | None = None  # user's estimate, seconds
    interactive: bool = False
    preemptible: bool | None = None  # default: tier-derived
    failure_plan: FailurePlan | None = None
    name: str = ""
    model_name: str = ""  # key into repro.workload.models.MODEL_CATALOG
    #: Elastic jobs may run on as few as this many GPUs (None = rigid).
    #: ``duration`` remains the service time at the FULL request; running
    #: narrower stretches wall time via the execution model.
    elastic_min_gpus: int | None = None
    #: Input dataset staged from the shared filesystem before the job runs
    #: (0 = none); drives the storage-staging model.
    dataset_gb: float = 0.0
    #: Inference-service replicas carry their service's id; batch training
    #: jobs leave this ``None``.  Service replicas are excluded from the
    #: job-level latency aggregates (their "latency" is request latency,
    #: reported via :class:`~repro.sim.metrics.ServingMetrics`).
    service_id: str | None = None
    #: Workflow membership: stages of one pipeline share a workflow_id and
    #: declare upstream stages in ``depends_on`` (job ids).  Plain jobs
    #: leave both empty and take the legacy code path everywhere.
    workflow_id: str | None = None
    depends_on: tuple[JobId, ...] = ()
    #: Bytes of output artifact downstream stages must fetch from this
    #: job's ``last_nodes`` before they can start (0 = none declared).
    artifact_bytes: float = 0.0

    # -- runtime state (managed by transition methods) --
    state: JobState = JobState.QUEUED
    remaining_work: float = field(init=False)
    attempts: int = 0
    preemptions: int = 0
    first_start_time: float | None = None
    last_start_time: float | None = None
    end_time: float | None = None
    current_slowdown: float = 1.0
    current_nodes: tuple[str, ...] = ()
    last_nodes: tuple[str, ...] = ()  # nodes of the most recent attempt
    current_gpus: int = 0  # GPUs of the live attempt (elastic jobs may vary)
    current_setup_s: float = 0.0  # provisioning/staging head of the attempt
    gpu_seconds_used: float = 0.0
    #: When the control plane released this job from PENDING_DEPS (None for
    #: jobs that never held); splits queueing delay into dependency hold vs
    #: post-release scheduler wait.
    deps_released_at: float | None = None
    #: GPU-seconds of *retained* progress: every accrued work segment books
    #: ``work × num_gpus`` (the ideal cost of the progress made at the full
    #: request), and re-done work (checkpoint loss, restore) is subtracted
    #: when it is scheduled for redoing.  The gap to ``gpu_seconds_used``
    #: is setup, slowdown, discarded attempts, and restore/warmup — the
    #: non-productive component of the goodput decomposition.
    productive_gpu_seconds: float = 0.0
    failure_category: FailureCategory | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValidationError(f"job {self.job_id}: duration must be positive")
        if self.submit_time < 0:
            raise ValidationError(f"job {self.job_id}: submit_time must be >= 0")
        if self.walltime_estimate is None:
            self.walltime_estimate = self.duration
        if self.preemptible is None:
            self.preemptible = self.tier is JobTier.OPPORTUNISTIC
        if self.elastic_min_gpus is not None and not (
            1 <= self.elastic_min_gpus <= self.request.num_gpus
        ):
            raise ValidationError(
                f"job {self.job_id}: elastic_min_gpus must be in "
                f"[1, {self.request.num_gpus}], got {self.elastic_min_gpus}"
            )
        if self.dataset_gb < 0:
            raise ValidationError(f"job {self.job_id}: dataset_gb must be >= 0")
        if self.artifact_bytes < 0:
            raise ValidationError(f"job {self.job_id}: artifact_bytes must be >= 0")
        if self.job_id in self.depends_on:
            raise ValidationError(f"job {self.job_id} depends on itself")
        self.remaining_work = self.duration

    # -- derived quantities ---------------------------------------------------

    @property
    def num_gpus(self) -> int:
        return self.request.num_gpus

    @property
    def elastic(self) -> bool:
        return self.elastic_min_gpus is not None

    @property
    def work_done(self) -> float:
        return self.duration - self.remaining_work

    @property
    def wait_time(self) -> float | None:
        """Queueing delay: submission → first start (None if never started)."""
        if self.first_start_time is None:
            return None
        return self.first_start_time - self.submit_time

    @property
    def jct(self) -> float | None:
        """Job completion time: submission → terminal (None while live)."""
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time

    @property
    def finished(self) -> bool:
        return self.state.terminal

    def expected_runtime(self, slowdown: float = 1.0) -> float:
        """Wall time to finish remaining work at the given slowdown."""
        return self.remaining_work * slowdown

    def remaining_work_at(self, now: float) -> float:
        """True remaining work including live progress (oracle view).

        ``remaining_work`` is only checkpointed at segment boundaries;
        this extrapolates through the current running segment.
        """
        if self.state is JobState.RUNNING and self.last_start_time is not None:
            elapsed = max(0.0, now - self.last_start_time - self.current_setup_s)
            return max(0.0, self.remaining_work - elapsed / self.current_slowdown)
        return self.remaining_work

    def estimated_remaining(self, now: float) -> float:
        """Scheduler-visible remaining time based on the *user estimate*.

        Backfill reservations use this, never the true duration — mirroring
        real systems where the scheduler only sees wall-time limits.
        """
        if self.state is JobState.RUNNING and self.last_start_time is not None:
            elapsed = now - self.last_start_time
            return max(0.0, self.walltime_estimate - elapsed)
        return self.walltime_estimate or 0.0

    # -- transitions ---------------------------------------------------------

    def _require_state(self, expected: JobState, action: str) -> None:
        if self.state is not expected:
            raise JobStateError(
                f"cannot {action} job {self.job_id}: state is "
                f"{self.state.value}, expected {expected.value}"
            )

    def start(
        self,
        now: float,
        nodes: tuple[str, ...],
        slowdown: float = 1.0,
        granted_gpus: int | None = None,
        setup_s: float = 0.0,
    ) -> None:
        """QUEUED → RUNNING on the given nodes at the given slowdown.

        ``granted_gpus`` defaults to the full request; elastic jobs may be
        granted anywhere in ``[elastic_min_gpus, num_gpus]``.  ``setup_s``
        is the provisioning/staging head of this attempt: resources are
        held (GPU-seconds accrue) but no *work* progresses during it.
        """
        self._require_state(JobState.QUEUED, "start")
        if slowdown <= 0:
            raise ValidationError(f"slowdown must be positive, got {slowdown}")
        if now < self.submit_time:
            raise JobStateError(
                f"job {self.job_id} started at {now} before submission "
                f"at {self.submit_time}"
            )
        granted = self.num_gpus if granted_gpus is None else granted_gpus
        floor = self.elastic_min_gpus if self.elastic else self.num_gpus
        if not floor <= granted <= self.num_gpus:
            raise JobStateError(
                f"job {self.job_id} granted {granted} GPUs outside "
                f"[{floor}, {self.num_gpus}]"
            )
        self.state = JobState.RUNNING
        self.attempts += 1
        self.last_start_time = now
        if self.first_start_time is None:
            self.first_start_time = now
        if setup_s < 0:
            raise ValidationError(f"setup_s must be non-negative, got {setup_s}")
        self.current_slowdown = slowdown
        self.current_nodes = nodes
        self.last_nodes = nodes
        self.current_gpus = granted
        self.current_setup_s = setup_s

    def _accrue(self, now: float) -> None:
        """Book the work done in the current run segment."""
        assert self.last_start_time is not None
        elapsed = now - self.last_start_time
        if elapsed < -1e-9:
            raise JobStateError(
                f"job {self.job_id}: segment end {now} precedes start "
                f"{self.last_start_time}"
            )
        productive = max(0.0, elapsed - self.current_setup_s)
        work = min(self.remaining_work, productive / self.current_slowdown)
        self.remaining_work -= work
        self.gpu_seconds_used += max(0.0, elapsed) * (self.current_gpus or self.num_gpus)
        self.productive_gpu_seconds += work * self.num_gpus

    def preempt(self, now: float, checkpoint_loss: float = 0.0) -> None:
        """RUNNING → QUEUED, checkpointing progress.

        ``checkpoint_loss`` seconds of completed work are lost (re-done on
        the next attempt), modelling checkpoint granularity.
        """
        self._require_state(JobState.RUNNING, "preempt")
        self._accrue(now)
        before = self.remaining_work
        self.remaining_work = min(self.duration, self.remaining_work + checkpoint_loss)
        redone = self.remaining_work - before
        # No clamp at zero: migration clones start with a restore-work debt
        # (see checkpoint_clone), and an early preemption may briefly push
        # the integral negative before the redo is re-accrued.  For ordinary
        # jobs ``redone <= work_done`` always holds (the duration clamp), so
        # the value stays non-negative.
        self.productive_gpu_seconds -= redone * self.num_gpus
        self.preemptions += 1
        self.state = JobState.QUEUED
        self.current_nodes = ()
        self.current_gpus = 0

    def requeue(self, now: float, work_lost: bool = True) -> None:
        """RUNNING → QUEUED after an external kill (e.g. node failure).

        Unlike :meth:`preempt` there is no graceful checkpoint: when
        ``work_lost`` the whole current attempt's progress is discarded.
        """
        self._require_state(JobState.RUNNING, "requeue")
        if work_lost:
            assert self.last_start_time is not None
            elapsed = max(0.0, now - self.last_start_time)
            self.gpu_seconds_used += elapsed * (self.current_gpus or self.num_gpus)
        else:
            self._accrue(now)
        self.state = JobState.QUEUED
        self.current_nodes = ()
        self.current_gpus = 0

    def complete(self, now: float) -> None:
        """RUNNING → COMPLETED; remaining work must be exhausted."""
        self._require_state(JobState.RUNNING, "complete")
        self._accrue(now)
        if self.remaining_work > 1e-6:
            raise JobStateError(
                f"job {self.job_id} completed with {self.remaining_work:.3f}s "
                "of work remaining"
            )
        self.remaining_work = 0.0
        self.state = JobState.COMPLETED
        self.end_time = now
        self.current_nodes = ()
        self.current_gpus = 0

    def fail(self, now: float, category: FailureCategory) -> None:
        """RUNNING/QUEUED → FAILED with a taxonomy category.

        Failing from QUEUED covers administrative failures decided off the
        node, e.g. exceeding the preemption limit right after an eviction.
        """
        if self.state is JobState.RUNNING:
            self._accrue(now)
        elif self.state is not JobState.QUEUED:
            raise JobStateError(
                f"cannot fail job {self.job_id}: state is {self.state.value}"
            )
        self.state = JobState.FAILED
        self.failure_category = category
        self.end_time = now
        self.current_nodes = ()
        self.current_gpus = 0

    def kill(self, now: float) -> None:
        """QUEUED/RUNNING → KILLED (user cancellation)."""
        if self.state.terminal:
            raise JobStateError(f"cannot kill job {self.job_id}: already {self.state.value}")
        if self.state is JobState.RUNNING:
            self._accrue(now)
        self.state = JobState.KILLED
        self.end_time = now
        self.current_nodes = ()
        self.current_gpus = 0

    def checkpoint_clone(
        self,
        *,
        submit_time: float,
        restore_s: float = 0.0,
        job_id: JobId | None = None,
    ) -> Job:
        """A fresh QUEUED copy of this job resuming from its checkpoint.

        Used by cross-cluster migration: the source incarnation is killed
        and this clone is submitted to the target cluster at
        ``submit_time`` (source time + modelled transfer delay).  The
        clone carries the checkpointed ``remaining_work`` plus
        ``restore_s`` seconds of work re-done when resuming from the
        checkpoint; the redo is booked as a *debt* on the clone's
        productive integral, so restore time is exactly non-productive in
        the goodput decomposition once re-accrued.  ``job_id`` renames the
        incarnation (ids must stay unique if the job ever returns to a
        cluster it already visited).  Attempt counters and GPU-second
        accounting restart at zero — they are per-cluster; the federation
        layer stitches the incarnations back together.
        """
        clone = Job(
            job_id=self.job_id if job_id is None else job_id,
            user_id=self.user_id,
            lab_id=self.lab_id,
            # Node pins (partition routing) are per-cluster state, not part
            # of the user's request — the target cluster re-routes freely.
            request=replace(self.request, allowed_nodes=None)
            if self.request.allowed_nodes is not None
            else self.request,
            submit_time=submit_time,
            duration=self.duration,
            tier=self.tier,
            partition=None,  # partitions are per-cluster; the router re-admits
            walltime_estimate=self.walltime_estimate,
            interactive=self.interactive,
            preemptible=self.preemptible,
            failure_plan=self.failure_plan,
            name=self.name,
            model_name=self.model_name,
            elastic_min_gpus=self.elastic_min_gpus,
            dataset_gb=self.dataset_gb,
            service_id=self.service_id,
            workflow_id=self.workflow_id,
            depends_on=self.depends_on,
            artifact_bytes=self.artifact_bytes,
        )
        if restore_s < 0:
            raise ValidationError(f"restore_s must be non-negative, got {restore_s}")
        clone.remaining_work = min(self.duration, self.remaining_work + restore_s)
        # The restore redo is work the clone will accrue again; starting the
        # productive integral in debt makes the clone's final figure equal
        # its *retained* progress exactly (clone work − redo).
        redone = clone.remaining_work - self.remaining_work
        clone.productive_gpu_seconds = -redone * clone.num_gpus
        return clone
