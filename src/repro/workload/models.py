"""DNN model profiles for placement-sensitive performance modelling.

Distributed training alternates compute (forward/backward) with gradient
synchronisation, so how much a job suffers from a spread-out placement
depends on its gradient size relative to its compute time.  This module
carries a small catalogue of representative model profiles (communication-
light CNNs through communication-heavy transformers) and helpers to assign
them to trace jobs, which the execution layer (:mod:`repro.execlayer`) turns
into slowdown factors and the F9 locality experiment sweeps.

Numbers are representative of published per-iteration measurements on V100
hardware; only their *ratios* matter to the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .trace import Trace


@dataclass(frozen=True)
class ModelProfile:
    """Per-iteration profile of one training workload.

    Attributes:
        name: Catalogue key.
        gradient_mb: Bytes exchanged per iteration per replica (MB).
        compute_ms: Forward+backward time per iteration on one reference
            GPU (V100), milliseconds.
        batch_memory_gb: Approximate per-GPU working set, used by the
            schema layer to sanity-check memory requests.
    """

    name: str
    gradient_mb: float
    compute_ms: float
    batch_memory_gb: float

    def __post_init__(self) -> None:
        if self.gradient_mb <= 0 or self.compute_ms <= 0:
            raise ConfigError(f"model profile {self.name} has non-positive fields")

    @property
    def comm_intensity(self) -> float:
        """MB of gradient per millisecond of compute — higher = more
        sensitive to placement."""
        return self.gradient_mb / self.compute_ms


MODEL_CATALOG: dict[str, ModelProfile] = {
    profile.name: profile
    for profile in [
        ModelProfile("resnet50", gradient_mb=98.0, compute_ms=160.0, batch_memory_gb=9.0),
        ModelProfile("vgg16", gradient_mb=528.0, compute_ms=210.0, batch_memory_gb=11.0),
        ModelProfile("bert-base", gradient_mb=418.0, compute_ms=185.0, batch_memory_gb=12.0),
        ModelProfile("bert-large", gradient_mb=1340.0, compute_ms=340.0, batch_memory_gb=15.0),
        ModelProfile("gpt2-medium", gradient_mb=1420.0, compute_ms=310.0, batch_memory_gb=16.0),
        ModelProfile("gpt2-xl", gradient_mb=6200.0, compute_ms=720.0, batch_memory_gb=28.0),
        ModelProfile("dlrm", gradient_mb=2200.0, compute_ms=95.0, batch_memory_gb=20.0),
        ModelProfile("pointnet", gradient_mb=14.0, compute_ms=60.0, batch_memory_gb=4.0),
    ]
}

#: Default model mix by GPU demand class: small jobs are mostly small CNNs /
#: notebooks, wide jobs skew to large transformers.
_DEFAULT_MIX_SMALL = ("resnet50", "pointnet", "bert-base", "vgg16")
_DEFAULT_MIX_MEDIUM = ("resnet50", "bert-base", "bert-large", "vgg16", "dlrm")
_DEFAULT_MIX_LARGE = ("bert-large", "gpt2-medium", "gpt2-xl", "dlrm")


def get_model_profile(name: str) -> ModelProfile:
    """Catalogue lookup with a helpful error on a miss."""
    try:
        return MODEL_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_CATALOG))
        raise ConfigError(f"unknown model {name!r}; known models: {known}") from None


def default_profile_for(num_gpus: int) -> ModelProfile:
    """Deterministic fallback profile for jobs without an assigned model."""
    if num_gpus <= 2:
        return MODEL_CATALOG["resnet50"]
    if num_gpus <= 8:
        return MODEL_CATALOG["bert-base"]
    return MODEL_CATALOG["bert-large"]


def assign_models(trace: Trace, seed: int | np.random.Generator = 0) -> Trace:
    """Assign a model name to every job in *trace* (in place; returns it).

    Jobs that already carry a ``model_name`` are left untouched so traces
    loaded from disk replay identically.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    for job in trace:
        if job.model_name:
            continue
        if job.num_gpus <= 2:
            mix = _DEFAULT_MIX_SMALL
        elif job.num_gpus <= 8:
            mix = _DEFAULT_MIX_MEDIUM
        else:
            mix = _DEFAULT_MIX_LARGE
        job.model_name = str(rng.choice(mix))
    return trace


def profile_of(job) -> ModelProfile:
    """Resolve a job's model profile (catalogue entry or size-based default)."""
    if getattr(job, "model_name", ""):
        return get_model_profile(job.model_name)
    return default_profile_for(job.num_gpus)
