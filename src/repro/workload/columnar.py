"""Columnar job trace: ``Job`` objects materialized lazily from arrays.

Fleet-scale synthesis (:mod:`repro.workload.fleet`) produces every job
field as a vectorized column in seconds, but turning a million rows of
columns into a million :class:`~repro.workload.job.Job` objects is a pure
Python loop that dominates trace-build time (~47 s at 1M jobs).  Most
consumers of a freshly synthesized trace never need the objects at all:
trace statistics, sweep-engine row shipping, and result-cache keys all
work from the *static* columns.

:class:`ColumnarTrace` keeps the columns and defers object construction
until something actually asks for ``.jobs`` (the simulator does; summary
statistics and ``frozen_rows`` don't).  The materialized objects are
byte-for-byte the ones the eager path builds — both run the same
:func:`materialize_jobs` loop — so a lazy trace is a drop-in
:class:`~repro.workload.trace.Trace`.

Columns are pre-sorted by ``(submit_time, job_id)`` by construction (ids
are assigned in submit order), so the dataclass ``__post_init__``
sort/duplicate validation is safely skipped.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import TraceError
from .job import FailureCategory, FailurePlan, Job, JobTier, ResourceRequest
from .trace import Trace

#: The column names a :class:`ColumnarTrace` carries (all plain Python
#: lists of scalars, already in canonical submit order).
COLUMN_NAMES = (
    "submit",
    "interactive",
    "num_gpus",
    "duration",
    "guaranteed",
    "walltime",
    "gpu_type",
    "cpus",
    "memory",
    "fails",
    "user_error",
    "early_fraction",
    "oom_fraction",
    "elastic",
    "dataset_gb",
    "user_index",
    "lab",
)


def materialize_jobs(
    columns: dict[str, list],
    lab_ids: list[str],
    user_ids: list[list[str]],
    gpus_per_node_cap: int,
) -> list[Job]:
    """Build the ``Job`` objects a column set describes (the hot loop).

    Shared by the eager fleet path and :class:`ColumnarTrace` so both
    produce identical objects.  Identical request shapes share one frozen
    :class:`~repro.workload.job.ResourceRequest` instance.
    """
    submit_col = columns["submit"]
    interactive_col = columns["interactive"]
    num_gpus_col = columns["num_gpus"]
    duration_col = columns["duration"]
    guaranteed_col = columns["guaranteed"]
    walltime_col = columns["walltime"]
    gpu_type_col = columns["gpu_type"]
    cpus_col = columns["cpus"]
    memory_col = columns["memory"]
    fails_col = columns["fails"]
    user_error_col = columns["user_error"]
    early_col = columns["early_fraction"]
    oom_col = columns["oom_fraction"]
    elastic_col = columns["elastic"]
    dataset_col = columns["dataset_gb"]
    user_index_col = columns["user_index"]
    lab_col = columns["lab"]

    request_cache: dict[tuple[int, int | None, str | None, int, float], ResourceRequest] = {}
    cap = gpus_per_node_cap
    guaranteed_tier = JobTier.GUARANTEED
    opportunistic_tier = JobTier.OPPORTUNISTIC
    user_error_cat = FailureCategory.USER_ERROR
    oom_cat = FailureCategory.OOM
    jobs: list[Job] = []
    append = jobs.append
    for index in range(len(submit_col)):
        num_gpus = num_gpus_col[index]
        interactive = interactive_col[index]
        request_key = (
            num_gpus,
            min(num_gpus, cap) if num_gpus > cap else None,
            gpu_type_col[index] or None,
            cpus_col[index],
            memory_col[index],
        )
        request = request_cache.get(request_key)
        if request is None:
            request = ResourceRequest(
                num_gpus=request_key[0],
                gpus_per_node=request_key[1],
                gpu_type=request_key[2],
                cpus_per_gpu=request_key[3],
                memory_gb_per_gpu=request_key[4],
            )
            request_cache[request_key] = request

        failure_plan = None
        if fails_col[index]:
            if user_error_col[index]:
                failure_plan = FailurePlan(user_error_cat, early_col[index] or 0.01)
            else:
                failure_plan = FailurePlan(oom_cat, oom_col[index])

        elastic_min = None
        preemptible = None
        if elastic_col[index]:
            elastic_min = max(1, num_gpus // 4)
            preemptible = True

        lab_index = lab_col[index]
        append(
            Job(
                job_id=f"job-{index:08d}",
                user_id=user_ids[lab_index][user_index_col[index]],
                lab_id=lab_ids[lab_index],
                request=request,
                submit_time=submit_col[index],
                duration=duration_col[index],
                tier=guaranteed_tier if guaranteed_col[index] else opportunistic_tier,
                walltime_estimate=walltime_col[index],
                interactive=interactive,
                preemptible=preemptible,
                failure_plan=failure_plan,
                elastic_min_gpus=elastic_min,
                dataset_gb=dataset_col[index],
                name=f"{'notebook' if interactive else 'train'}-{index}",
            )
        )
    return jobs


class ColumnarTrace(Trace):
    """A :class:`Trace` backed by columns, materializing jobs on demand.

    ``len()``, summary statistics, and :meth:`frozen_rows` run straight
    off the columns without constructing a single ``Job``; the first
    access to ``.jobs`` (or iteration/indexing) materializes the whole
    object list once and memoizes it.  Mutate static job fields (e.g.
    ``assign_models``) only *after* materialization — once materialized,
    :meth:`frozen_rows` snapshots the objects, exactly like an eager
    trace.
    """

    def __init__(
        self,
        columns: dict[str, list],
        *,
        name: str,
        metadata: dict[str, object] | None = None,
        lab_ids: list[str],
        user_ids: list[list[str]],
        gpus_per_node_cap: int,
    ) -> None:
        # Deliberately NOT calling the dataclass __init__/__post_init__:
        # columns are pre-sorted with unique ids by construction, and
        # `jobs` is the lazy property below.
        missing = [key for key in COLUMN_NAMES if key not in columns]
        if missing:
            raise TraceError(f"columnar trace is missing columns: {missing}")
        lengths = {key: len(columns[key]) for key in COLUMN_NAMES}
        if len(set(lengths.values())) > 1:
            raise TraceError(f"columnar trace has ragged columns: {lengths}")
        self.name = name
        self.metadata = dict(metadata or {})
        self._rows = None
        self._columns = columns
        self._lab_ids = lab_ids
        self._user_ids = user_ids
        self._cap = gpus_per_node_cap
        self._length = lengths["submit"]
        self._materialized: list[Job] | None = None

    # -- lazy materialization -------------------------------------------------

    @property
    def jobs(self) -> list[Job]:  # type: ignore[override]
        if self._materialized is None:
            self._materialized = materialize_jobs(
                self._columns, self._lab_ids, self._user_ids, self._cap
            )
        return self._materialized

    @property
    def materialized(self) -> bool:
        """Whether the ``Job`` objects have been built yet (observability)."""
        return self._materialized is not None

    # -- cheap overrides off the columns --------------------------------------

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, index: int) -> Job:
        return self.jobs[index]

    @property
    def span_seconds(self) -> float:
        if self._length < 2:
            return 0.0
        submit = self._columns["submit"]
        return float(submit[-1]) - float(submit[0])

    @property
    def total_gpu_seconds_requested(self) -> float:
        # Sequential sum, not a numpy dot product: pairwise summation
        # changes the low bits, and this figure must match the eager
        # trace's bit-for-bit.
        return sum(
            duration * gpus
            for duration, gpus in zip(self._columns["duration"], self._columns["num_gpus"])
        )

    def durations(self) -> np.ndarray:
        return np.asarray(self._columns["duration"], dtype=float)

    def users(self) -> tuple[str, ...]:
        pairs = {
            (lab, user)
            for lab, user in zip(self._columns["lab"], self._columns["user_index"])
        }
        return tuple(sorted(self._user_ids[lab][user] for lab, user in pairs))

    def labs(self) -> tuple[str, ...]:
        return tuple(sorted(self._lab_ids[lab] for lab in set(self._columns["lab"])))

    def gpu_demand_histogram(self) -> dict[int, int]:
        values, counts = np.unique(
            np.asarray(self._columns["num_gpus"], dtype=np.int64), return_counts=True
        )
        return {int(value): int(count) for value, count in zip(values, counts)}

    def gpu_hours_by_demand(self) -> dict[int, float]:
        # Sequential accumulation in trace order, mirroring the parent —
        # a vectorized per-bucket sum would differ in the low float bits.
        hours: dict[int, float] = {}
        for duration, gpus in zip(self._columns["duration"], self._columns["num_gpus"]):
            hours[gpus] = hours.get(gpus, 0.0) + duration * gpus / 3600.0
        return dict(sorted(hours.items()))

    def submissions_per_hour(self) -> dict[int, int]:
        hour = (np.asarray(self._columns["submit"], dtype=float) // 3600).astype(np.int64)
        values, counts = np.unique(hour, return_counts=True)
        return {int(value): int(count) for value, count in zip(values, counts)}

    def summary(self) -> dict[str, float]:
        if not self._length:
            return {"jobs": 0.0}
        durations = self.durations()
        demands = np.asarray(self._columns["num_gpus"], dtype=float)
        return {
            "jobs": float(self._length),
            "users": float(len(self.users())),
            "labs": float(len(self.labs())),
            "span_days": self.span_seconds / 86400.0,
            "gpu_hours": self.total_gpu_seconds_requested / 3600.0,
            "duration_p50_min": float(np.percentile(durations, 50)) / 60.0,
            "duration_p99_hours": float(np.percentile(durations, 99)) / 3600.0,
            "mean_gpus": float(demands.mean()),
            "single_gpu_fraction": float((demands == 1).mean()),
        }

    # -- serialisation --------------------------------------------------------

    def frozen_rows(self) -> tuple[dict[str, object], ...]:
        """Serialisation rows, straight from the columns when still lazy.

        Once the objects have been materialized (and possibly mutated by
        e.g. ``assign_models``), rows are snapshotted from the objects via
        the parent implementation instead, so mutations are captured.
        """
        if self._materialized is not None:
            return super().frozen_rows()
        if self._rows is None:
            self._rows = tuple(self._row_at(index) for index in range(self._length))
        return self._rows

    def _row_at(self, index: int) -> dict[str, object]:
        cols = self._columns
        num_gpus = cols["num_gpus"][index]
        interactive = cols["interactive"][index]
        cap = self._cap
        failure_category = ""
        failure_at_fraction: object = ""
        if cols["fails"][index]:
            if cols["user_error"][index]:
                failure_category = FailureCategory.USER_ERROR.value
                failure_at_fraction = cols["early_fraction"][index] or 0.01
            else:
                failure_category = FailureCategory.OOM.value
                failure_at_fraction = cols["oom_fraction"][index]
        lab = cols["lab"][index]
        return {
            "job_id": f"job-{index:08d}",
            "user_id": self._user_ids[lab][cols["user_index"][index]],
            "lab_id": self._lab_ids[lab],
            "submit_time": cols["submit"][index],
            "duration": cols["duration"][index],
            "num_gpus": num_gpus,
            "gpus_per_node": min(num_gpus, cap) if num_gpus > cap else "",
            "gpu_type": cols["gpu_type"][index] or "",
            "cpus_per_gpu": cols["cpus"][index],
            "memory_gb_per_gpu": cols["memory"][index],
            "tier": (
                JobTier.GUARANTEED.value
                if cols["guaranteed"][index]
                else JobTier.OPPORTUNISTIC.value
            ),
            "partition": "",
            "walltime_estimate": cols["walltime"][index],
            "interactive": int(interactive),
            "failure_category": failure_category,
            "failure_at_fraction": failure_at_fraction,
            "elastic_min": max(1, num_gpus // 4) if cols["elastic"][index] else "",
            "dataset_gb": cols["dataset_gb"][index],
            "model": "",
            "name": f"{'notebook' if interactive else 'train'}-{index}",
            "workflow": "",
            "depends_on": "",
            "artifact_bytes": 0.0,
        }
