"""Pipeline-shaped workflow traces: multi-stage jobs with dependencies.

Campus ML work is increasingly *pipelines*, not single jobs: preprocess →
train → evaluate chains, hyper-parameter fan-outs, sharded-ETL fan-ins,
and RAG refresh diamonds (ingest → embed shards → index → evaluate).  This
module synthesizes such traces as plain :class:`~repro.workload.trace.Trace`
objects whose jobs carry ``workflow_id`` / ``depends_on`` / ``artifact_bytes``
— every stage is submitted at the workflow's arrival time and the
dependency-aware control plane holds downstream stages until their
upstreams finish.

Four templates cover the shapes that matter for transfer-aware placement:

* ``chain`` — a strict sequence (each artifact hops once);
* ``fan-out`` — one producer, many consumers of the same artifact;
* ``fan-in`` — many shard producers, one aggregator fetching all of them;
* ``rag`` — the diamond: ingest → parallel embed shards → index → eval.

All randomness flows through one :class:`numpy.random.Generator`, so a
seed fully determines the trace, matching :mod:`repro.workload.synth`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..config import require_fraction, require_positive
from ..errors import ConfigError
from .job import Job, JobTier, ResourceRequest
from .trace import Trace

#: Template name → builder of ``[(stage_name, [upstream indices]), ...]``.
#: Builders take the sampled branch width; fixed-shape templates ignore it.
TEMPLATE_NAMES = ("chain", "fan-out", "fan-in", "rag")


def _chain_stages(length: int) -> list[tuple[str, list[int]]]:
    return [
        (f"stage-{index:02d}", [index - 1] if index else [])
        for index in range(length)
    ]


def _fan_out_stages(width: int) -> list[tuple[str, list[int]]]:
    stages: list[tuple[str, list[int]]] = [("produce", [])]
    stages.extend((f"branch-{index:02d}", [0]) for index in range(width))
    return stages


def _fan_in_stages(width: int) -> list[tuple[str, list[int]]]:
    stages: list[tuple[str, list[int]]] = [
        (f"shard-{index:02d}", []) for index in range(width)
    ]
    stages.append(("aggregate", list(range(width))))
    return stages


def _rag_stages(width: int) -> list[tuple[str, list[int]]]:
    stages: list[tuple[str, list[int]]] = [("ingest", [])]
    stages.extend((f"embed-{index:02d}", [0]) for index in range(width))
    stages.append(("index", list(range(1, width + 1))))
    stages.append(("evaluate", [width + 1]))
    return stages


_TEMPLATES = {
    "chain": _chain_stages,
    "fan-out": _fan_out_stages,
    "fan-in": _fan_in_stages,
    "rag": _rag_stages,
}


@dataclass(frozen=True)
class PipelineTraceConfig:
    """Parameterisation of a synthetic pipeline (workflow-DAG) trace."""

    days: float = 1.0
    workflows_per_day: float = 40.0
    #: Probability of each template per workflow; must sum to 1.
    template_mix: dict[str, float] = field(
        default_factory=lambda: {
            "chain": 0.35,
            "fan-out": 0.25,
            "fan-in": 0.25,
            "rag": 0.15,
        }
    )
    #: Chain length and fan width ranges (inclusive), sampled uniformly.
    chain_length: tuple[int, int] = (3, 5)
    fan_width: tuple[int, int] = (2, 4)

    #: Per-stage GPU demand distribution (stages are small relative to the
    #: monolithic training jobs around them).
    stage_gpu_pmf: dict[int, float] = field(
        default_factory=lambda: {1: 0.50, 2: 0.25, 4: 0.15, 8: 0.10}
    )
    stage_median_minutes: float = 25.0
    stage_sigma: float = 0.9
    min_stage_seconds: float = 60.0
    max_stage_seconds: float = 6.0 * 3600.0

    #: Artifact size (log-normal, GB) written by every stage that feeds a
    #: downstream stage — the quantity transfer-aware placement moves.
    artifact_gb_median: float = 8.0
    artifact_gb_sigma: float = 1.2

    guaranteed_fraction: float = 0.6
    num_labs: int = 4
    gpus_per_node_cap: int = 8
    name: str = "pipelines"
    #: Job/workflow id prefix; sweeps use it to keep merged ids disjoint
    #: from the base trace's ``job-*`` namespace.
    id_prefix: str = "wf"

    def __post_init__(self) -> None:
        require_positive("days", self.days)
        require_positive("workflows_per_day", self.workflows_per_day)
        if not self.template_mix:
            raise ConfigError("template_mix must be non-empty")
        unknown = set(self.template_mix) - set(TEMPLATE_NAMES)
        if unknown:
            raise ConfigError(
                f"unknown workflow templates {sorted(unknown)}; "
                f"known: {list(TEMPLATE_NAMES)}"
            )
        if any(p < 0 for p in self.template_mix.values()):
            raise ConfigError("template_mix probabilities must be non-negative")
        total = sum(self.template_mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(f"template_mix must sum to 1, sums to {total}")
        for label, (low, high) in (
            ("chain_length", self.chain_length),
            ("fan_width", self.fan_width),
        ):
            if low < 1 or high < low:
                raise ConfigError(f"{label} must satisfy 1 <= low <= high")
        if not self.stage_gpu_pmf or any(d <= 0 for d in self.stage_gpu_pmf):
            raise ConfigError("stage_gpu_pmf demands must be positive")
        if abs(sum(self.stage_gpu_pmf.values()) - 1.0) > 1e-6:
            raise ConfigError("stage_gpu_pmf must sum to 1")
        require_positive("stage_median_minutes", self.stage_median_minutes)
        require_positive("stage_sigma", self.stage_sigma)
        if self.max_stage_seconds <= self.min_stage_seconds:
            raise ConfigError("max_stage_seconds must exceed min_stage_seconds")
        require_positive("artifact_gb_median", self.artifact_gb_median)
        require_positive("artifact_gb_sigma", self.artifact_gb_sigma)
        require_fraction("guaranteed_fraction", self.guaranteed_fraction)
        require_positive("num_labs", self.num_labs)
        require_positive("gpus_per_node_cap", self.gpus_per_node_cap)
        if not self.id_prefix:
            raise ConfigError("id_prefix must be non-empty")


class PipelineSynthesizer:
    """Generates a workflow-DAG :class:`Trace` from a config and a seed.

    >>> trace = PipelineSynthesizer(PipelineTraceConfig(days=0.5), seed=0).generate()
    >>> any(job.depends_on for job in trace)
    True
    """

    def __init__(
        self, config: PipelineTraceConfig, seed: int | np.random.Generator = 0
    ) -> None:
        self.config = config
        self.rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )

    def _sample_arrivals(self) -> np.ndarray:
        horizon = self.config.days * 86400.0
        count = int(self.rng.poisson(self.config.workflows_per_day * self.config.days))
        return np.sort(self.rng.uniform(0.0, horizon, size=count))

    def _sample_duration(self) -> float:
        cfg = self.config
        value = float(
            self.rng.lognormal(
                mean=np.log(cfg.stage_median_minutes * 60.0), sigma=cfg.stage_sigma
            )
        )
        return float(np.clip(value, cfg.min_stage_seconds, cfg.max_stage_seconds))

    def _sample_artifact_bytes(self) -> float:
        cfg = self.config
        gb = float(
            self.rng.lognormal(
                mean=np.log(cfg.artifact_gb_median), sigma=cfg.artifact_gb_sigma
            )
        )
        return gb * 1e9

    def _stage_request(self) -> ResourceRequest:
        cfg = self.config
        demands = list(cfg.stage_gpu_pmf)
        probs = list(cfg.stage_gpu_pmf.values())
        num_gpus = int(self.rng.choice(demands, p=probs))
        return ResourceRequest(
            num_gpus=num_gpus,
            gpus_per_node=min(num_gpus, cfg.gpus_per_node_cap)
            if num_gpus > cfg.gpus_per_node_cap
            else None,
        )

    def _build_workflow(self, index: int, submit_time: float) -> list[Job]:
        cfg = self.config
        template = str(
            self.rng.choice(list(cfg.template_mix), p=list(cfg.template_mix.values()))
        )
        if template == "chain":
            width = int(self.rng.integers(cfg.chain_length[0], cfg.chain_length[1] + 1))
        else:
            width = int(self.rng.integers(cfg.fan_width[0], cfg.fan_width[1] + 1))
        stages = _TEMPLATES[template](width)
        workflow_id = f"{cfg.id_prefix}-{index:05d}"
        lab_index = int(self.rng.integers(cfg.num_labs))
        tier = (
            JobTier.GUARANTEED
            if self.rng.uniform() < cfg.guaranteed_fraction
            else JobTier.OPPORTUNISTIC
        )
        has_dependents = {
            upstream for _, upstreams in stages for upstream in upstreams
        }
        jobs: list[Job] = []
        for stage_index, (stage_name, upstreams) in enumerate(stages):
            jobs.append(
                Job(
                    job_id=f"{workflow_id}-s{stage_index:02d}",
                    user_id=f"user-{lab_index:02d}-wf",
                    lab_id=f"lab-{lab_index:02d}",
                    request=self._stage_request(),
                    submit_time=float(submit_time),
                    duration=self._sample_duration(),
                    tier=tier,
                    workflow_id=workflow_id,
                    depends_on=tuple(
                        f"{workflow_id}-s{upstream:02d}" for upstream in upstreams
                    ),
                    artifact_bytes=(
                        self._sample_artifact_bytes()
                        if stage_index in has_dependents
                        else 0.0
                    ),
                    name=f"{template}:{stage_name}",
                )
            )
        return jobs

    def generate(self) -> Trace:
        cfg = self.config
        jobs: list[Job] = []
        for index, submit_time in enumerate(self._sample_arrivals()):
            jobs.extend(self._build_workflow(index, submit_time))
        return Trace(
            jobs,
            name=cfg.name,
            metadata={"config": cfg.name, "days": cfg.days, "generator": "pipelines"},
        )


def pipeline_trace(
    days: float = 1.0,
    workflows_per_day: float = 40.0,
    seed: int = 0,
    **overrides: object,
) -> Trace:
    """One-call pipeline-trace synthesis."""
    config = replace(
        PipelineTraceConfig(days=days, workflows_per_day=workflows_per_day),
        **overrides,  # type: ignore[arg-type]
    )
    return PipelineSynthesizer(config, seed=seed).generate()
