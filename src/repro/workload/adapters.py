"""Adapters for public GPU-cluster trace formats.

Besides its own synthesizer, the library replays *real* published traces.
Two widely used formats are supported in their common CSV renditions:

* **Philly-style** (Microsoft's Philly trace): one row per job with a
  virtual cluster, submission time, GPU count, observed runtime, and final
  status (``Pass`` / ``Failed`` / ``Killed``);
* **Helios-style** (SenseTime's Helios traces): one row per job with user,
  gpu/cpu counts, state, submission time and duration.

Both adapters normalise timestamps so the first submission is ``t = 0``,
map virtual clusters / user groups onto labs, and convert terminal
statuses into this library's semantics: a job that *failed after running
H hours* becomes a job whose duration is H with a failure plan firing at
its very end — replaying it consumes exactly the observed resources.

Timestamps may be epoch seconds or ISO-8601 (``2017-10-03 14:21:08``).
Columns are matched case-insensitively with common aliases, so minor
variations between trace dumps parse without editing.
"""

from __future__ import annotations

import csv
from datetime import datetime
from pathlib import Path

from ..errors import TraceError
from .job import FailureCategory, FailurePlan, Job, JobTier, ResourceRequest
from .trace import Trace

#: Column aliases, canonical name → accepted headers (lowercase).
_ALIASES = {
    "job_id": ("job_id", "jobid", "job", "job_name"),
    "user": ("user", "user_id", "username"),
    "group": ("vc", "virtual_cluster", "group", "lab", "queue"),
    "submit_time": ("submit_time", "submitted_time", "submission_time", "arrival_time"),
    "duration": ("duration", "duration_s", "runtime", "run_time", "runtime_s"),
    "start_time": ("start_time", "started_time"),
    "end_time": ("end_time", "finished_time", "completed_time"),
    "gpus": ("gpus", "gpu_num", "num_gpus", "gpu_count", "gpu_request"),
    "cpus": ("cpus", "cpu_num", "num_cpus", "cpu_count"),
    "status": ("status", "state", "final_status", "job_status"),
}

_STATUS_MAP = {
    "pass": "completed",
    "passed": "completed",
    "completed": "completed",
    "success": "completed",
    "succeeded": "completed",
    "failed": "failed",
    "fail": "failed",
    "error": "failed",
    "killed": "killed",
    "cancelled": "killed",
    "canceled": "killed",
    "stopped": "killed",
}


def _parse_timestamp(text: str) -> float:
    text = text.strip()
    if not text:
        raise ValueError("empty timestamp")
    try:
        return float(text)
    except ValueError:
        pass
    try:
        return datetime.fromisoformat(text).timestamp()
    except ValueError as exc:
        raise ValueError(f"unparseable timestamp {text!r}") from exc


def _resolve_columns(fieldnames: list[str], required: tuple[str, ...]) -> dict[str, str]:
    lowered = {name.lower().strip(): name for name in fieldnames}
    resolved: dict[str, str] = {}
    for canonical, aliases in _ALIASES.items():
        for alias in aliases:
            if alias in lowered:
                resolved[canonical] = lowered[alias]
                break
    missing = [name for name in required if name not in resolved]
    if missing:
        raise TraceError(
            f"trace CSV is missing required columns {missing}; "
            f"found {sorted(lowered)}"
        )
    return resolved


def _row_value(row: dict, columns: dict[str, str], canonical: str, default: str = "") -> str:
    column = columns.get(canonical)
    if column is None:
        return default
    value = row.get(column)
    return default if value is None else str(value).strip()


def load_public_trace(
    path: str | Path,
    name: str | None = None,
    default_gpus_per_node: int = 8,
) -> Trace:
    """Load a Philly/Helios-style CSV into a :class:`Trace`.

    Rows with zero GPUs (CPU-only jobs) and rows whose runtime cannot be
    established are skipped with a count recorded in ``trace.metadata``.
    """
    path = Path(path)
    jobs: list[Job] = []
    skipped = 0
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if not reader.fieldnames:
            raise TraceError(f"{path}: empty trace CSV")
        columns = _resolve_columns(list(reader.fieldnames), ("job_id", "submit_time", "gpus"))
        for line_number, row in enumerate(reader, start=2):
            try:
                job = _job_from_public_row(row, columns, default_gpus_per_node)
            except (ValueError, KeyError) as exc:
                raise TraceError(f"{path}:{line_number}: {exc}") from exc
            if job is None:
                skipped += 1
                continue
            jobs.append(job)
    if not jobs:
        raise TraceError(f"{path}: no usable jobs in trace")
    origin = min(job.submit_time for job in jobs)
    rebased = [
        _rebase(job, origin) for job in jobs
    ]
    trace = Trace(rebased, name=name or path.stem, metadata={"skipped_rows": skipped})
    return trace


def _rebase(job: Job, origin: float) -> Job:
    # Jobs are mutable dataclasses with derived state; rebuild cleanly.
    return Job(
        job_id=job.job_id,
        user_id=job.user_id,
        lab_id=job.lab_id,
        request=job.request,
        submit_time=job.submit_time - origin,
        duration=job.duration,
        tier=job.tier,
        walltime_estimate=job.walltime_estimate,
        failure_plan=job.failure_plan,
        name=job.name,
    )


def _job_from_public_row(
    row: dict, columns: dict[str, str], default_gpus_per_node: int
) -> Job | None:
    gpus = int(float(_row_value(row, columns, "gpus") or 0))
    if gpus <= 0:
        return None  # CPU-only job; outside this cluster model's scope
    submit = _parse_timestamp(_row_value(row, columns, "submit_time"))

    duration_text = _row_value(row, columns, "duration")
    if duration_text:
        duration = float(duration_text)
    else:
        start_text = _row_value(row, columns, "start_time")
        end_text = _row_value(row, columns, "end_time")
        if not start_text or not end_text:
            return None
        duration = _parse_timestamp(end_text) - _parse_timestamp(start_text)
    if duration <= 0:
        return None

    status_raw = _row_value(row, columns, "status", "completed").lower()
    status = _STATUS_MAP.get(status_raw, "completed")
    failure_plan = None
    if status == "failed":
        # The observed runtime ends in failure: replay reproduces exactly
        # the resources the failed run consumed.
        failure_plan = FailurePlan(FailureCategory.USER_ERROR, at_fraction=1.0)

    user = _row_value(row, columns, "user", "unknown-user") or "unknown-user"
    group = _row_value(row, columns, "group", "default") or "default"
    cpus_text = _row_value(row, columns, "cpus")
    cpus_per_gpu = max(1, int(float(cpus_text)) // gpus) if cpus_text else 4

    gpus_per_node = None
    if gpus > default_gpus_per_node:
        if gpus % default_gpus_per_node:
            # Ragged wide request: round down to whole nodes (as the
            # original cluster's gang scheduler would have).
            gpus = (gpus // default_gpus_per_node) * default_gpus_per_node
        gpus_per_node = default_gpus_per_node

    return Job(
        job_id=str(_row_value(row, columns, "job_id")),
        user_id=user,
        lab_id=f"lab-{group}",
        request=ResourceRequest(
            num_gpus=gpus, gpus_per_node=gpus_per_node, cpus_per_gpu=cpus_per_gpu
        ),
        submit_time=submit,
        duration=duration,
        tier=JobTier.GUARANTEED,
        failure_plan=failure_plan,
        name=status,
    )
