"""Vectorized fleet-scale trace synthesis: ~1M jobs in seconds.

The scalar :class:`~repro.workload.synth.TraceSynthesizer` draws every job
field one ``rng`` call at a time — perfect for campus-sized traces and
pinned by golden tests, but a million-job month would take minutes of pure
RNG overhead.  :class:`FleetTraceSynthesizer` generates the same *kind* of
workload (same :class:`~repro.workload.synth.SyntheticTraceConfig`
parameterisation: NHPP diurnal arrivals, power-of-two demand, log-normal
durations, two tiers, scripted failures) array-at-a-time:

* **One independent RNG stream per lab**, spawned from the root seed via
  ``np.random.SeedSequence.spawn`` — labs are statistically independent,
  and the same seed always reproduces the same jobs regardless of how the
  arrays are later merged.
* **Array-at-a-time sampling**: each lab draws its full arrival vector and
  every per-job field as one vectorized call.
* **Interned requests**: jobs overwhelmingly share a handful of request
  shapes, so identical shapes share one frozen
  :class:`~repro.workload.job.ResourceRequest` instance — at a million
  jobs this is the difference between ~100 MB of duplicate objects and a
  dict of a few hundred.

Determinism contract: *self*-deterministic (same seed + config → the same
trace, byte for byte), **not** stream-compatible with the scalar
synthesizer — existing golden tests keep using ``TraceSynthesizer``
untouched.  Job ids use eight digits (``job-00000000``) because the
simulator's tiebreaks compare ids lexicographically and six digits stop
sorting numerically past 999 999 jobs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .columnar import COLUMN_NAMES, ColumnarTrace, materialize_jobs
from .synth import SyntheticTraceConfig
from .trace import Trace

#: Zipf exponent for lab *volume* shares (mild skew: big labs submit more).
LAB_SHARE_ZIPF = 0.8


def _hourly_rates(config: SyntheticTraceConfig) -> np.ndarray:
    """Vectorized twin of ``TraceSynthesizer._hourly_rates``."""
    hours = int(np.ceil(config.days * 24))
    profile = np.asarray(config.diurnal_profile, dtype=float)
    profile = profile / profile.mean()
    hour_index = np.arange(hours)
    day = hour_index // 24
    weekday = (config.start_weekday + day) % 7
    day_factor = np.where(weekday >= 5, config.weekend_factor, 1.0)
    if config.daily_seasonality:
        season = np.asarray(config.daily_seasonality, dtype=float)
        day_factor = day_factor * season[day % len(season)]
    return config.jobs_per_day / 24.0 * profile[hour_index % 24] * day_factor


class FleetTraceSynthesizer:
    """Array-at-a-time trace generation for fleet-scale simulations.

    >>> from repro.workload.synth import tacc_campus
    >>> trace = FleetTraceSynthesizer(tacc_campus(days=1), seed=0).generate()
    >>> len(trace) > 0
    True
    """

    def __init__(self, config: SyntheticTraceConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = int(seed)

    # -- population ----------------------------------------------------------

    def _lab_shares(self) -> np.ndarray:
        ranks = np.arange(1, self.config.num_labs + 1, dtype=float)
        shares = ranks**-LAB_SHARE_ZIPF
        return shares / shares.sum()

    def _user_weights(self) -> np.ndarray:
        """Within-lab user activity (Zipf over a fixed-size roster)."""
        count = max(1, int(round(self.config.mean_users_per_lab)))
        ranks = np.arange(1, count + 1, dtype=float)
        weights = ranks**-self.config.user_activity_zipf
        return weights / weights.sum()

    # -- per-lab sampling ----------------------------------------------------

    def _lab_columns(
        self, rng: np.random.Generator, rates: np.ndarray
    ) -> dict[str, np.ndarray]:
        """All job fields for one lab, every field one vectorized draw."""
        cfg = self.config
        counts = rng.poisson(rates)
        total = int(counts.sum())
        hours = np.arange(len(rates), dtype=float) * 3600.0
        submit = np.repeat(hours, counts) + rng.uniform(0.0, 3600.0, size=total)
        horizon = cfg.days * 86400.0
        keep = submit < horizon
        submit = submit[keep]
        total = len(submit)

        interactive = rng.random(total) < cfg.interactive_fraction
        demands = np.fromiter(cfg.gpu_demand_pmf, dtype=np.int64)
        demand_probs = np.fromiter(cfg.gpu_demand_pmf.values(), dtype=float)
        train_gpus = rng.choice(demands, size=total, p=demand_probs)
        notebook_gpus = rng.choice(np.array([1, 1, 1, 2]), size=total)
        num_gpus = np.where(interactive, notebook_gpus, train_gpus)

        # Duration: log-normal around the demand class median (largest
        # configured key <= demand), interactive notebooks overridden.
        keys = np.sort(demands)
        medians = np.array([cfg.duration.median_for(int(k)) for k in keys])
        class_index = np.searchsorted(keys, train_gpus, side="right") - 1
        median_s = medians[class_index] * 60.0
        train_duration = np.clip(
            rng.lognormal(mean=np.log(median_s), sigma=cfg.duration.sigma),
            cfg.duration.min_seconds,
            cfg.duration.max_seconds,
        )
        notebook_duration = np.clip(
            rng.lognormal(np.log(12 * 60.0), 0.9, size=total),
            60.0,
            cfg.interactive_max_minutes * 60.0,
        )
        duration = np.where(interactive, notebook_duration, train_duration)

        guaranteed = rng.random(total) < cfg.guaranteed_fraction
        walltime_factor = np.maximum(
            1.0,
            rng.lognormal(
                mean=np.log(cfg.walltime_overestimate_mean),
                sigma=cfg.walltime_overestimate_sigma,
                size=total,
            ),
        )

        type_keys = np.array(list(cfg.gpu_type_preferences), dtype=object)
        type_probs = np.fromiter(cfg.gpu_type_preferences.values(), dtype=float)
        gpu_type = rng.choice(type_keys, size=total, p=type_probs)
        cpus = rng.choice(np.array([2, 4, 4, 8]), size=total)
        memory = rng.choice(np.array([16.0, 32.0, 32.0, 64.0]), size=total)

        fails = rng.random(total) < cfg.failure_fraction
        user_error = rng.random(total) < cfg.failure_user_error_share
        early_fraction = rng.beta(1.2, 20.0, size=total)
        oom_fraction = np.clip(rng.uniform(0.05, 0.95, size=total), 0.01, 1.0)

        elastic = (
            ~interactive
            & (num_gpus >= 4)
            & (rng.random(total) < cfg.elastic_fraction)
        )
        dataset_gb = np.where(
            interactive,
            0.0,
            rng.lognormal(np.log(cfg.dataset_gb_median), cfg.dataset_gb_sigma, size=total),
        )
        user_weights = self._user_weights()
        user_index = rng.choice(len(user_weights), size=total, p=user_weights)

        return {
            "submit": submit,
            "interactive": interactive,
            "num_gpus": num_gpus,
            "duration": duration,
            "guaranteed": guaranteed,
            "walltime": duration * walltime_factor,
            "gpu_type": gpu_type,
            "cpus": cpus,
            "memory": memory,
            "fails": fails,
            "user_error": user_error,
            "early_fraction": early_fraction,
            "oom_fraction": oom_fraction,
            "elastic": elastic,
            "dataset_gb": dataset_gb,
            "user_index": user_index,
        }

    # -- generation ----------------------------------------------------------

    def generate(self, lazy: bool = False) -> Trace:
        """Synthesize the trace; ``lazy=True`` defers Job construction.

        The lazy path returns a :class:`~repro.workload.columnar.ColumnarTrace`
        whose statistics and serialisation rows come straight from the
        columns; ``Job`` objects are built (by the exact same loop) only
        when something iterates or indexes the trace.  The eager default
        keeps the fleet golden tests byte-identical.
        """
        cfg = self.config
        base_rates = _hourly_rates(cfg)
        shares = self._lab_shares()
        streams = np.random.SeedSequence(self.seed).spawn(cfg.num_labs)

        per_lab = []
        for lab_index, (share, stream) in enumerate(zip(shares, streams)):
            columns = self._lab_columns(np.random.default_rng(stream), base_rates * share)
            columns["lab"] = np.full(len(columns["submit"]), lab_index, dtype=np.int64)
            columns["position"] = np.arange(len(columns["submit"]), dtype=np.int64)
            per_lab.append(columns)
        if not per_lab:
            raise ConfigError("fleet synthesis needs at least one lab")

        merged = {
            key: np.concatenate([columns[key] for columns in per_lab])
            for key in per_lab[0]
        }
        # Submit-time order with a deterministic (lab, within-lab) tiebreak;
        # ids are then assigned in that order so the trace's canonical
        # (submit_time, job_id) sort is already satisfied.
        order = np.lexsort((merged["position"], merged["lab"], merged["submit"]))

        # ``tolist()`` converts each column to native Python scalars in one
        # C pass; the construction loop (materialize_jobs) then touches no
        # numpy objects.
        cols = {key: merged[key][order].tolist() for key in COLUMN_NAMES}

        lab_ids = [f"lab-{lab:02d}" for lab in range(cfg.num_labs)]
        roster = len(self._user_weights())
        user_ids = [
            [f"user-{lab:02d}-{user:02d}" for user in range(roster)]
            for lab in range(cfg.num_labs)
        ]
        metadata = {"config": cfg.name, "days": cfg.days, "generator": "fleet"}
        if lazy:
            return ColumnarTrace(
                cols,
                name=f"{cfg.name}-fleet",
                metadata=metadata,
                lab_ids=lab_ids,
                user_ids=user_ids,
                gpus_per_node_cap=cfg.gpus_per_node_cap,
            )
        return Trace(
            materialize_jobs(cols, lab_ids, user_ids, cfg.gpus_per_node_cap),
            name=f"{cfg.name}-fleet",
            metadata=metadata,
        )


def fleet_trace(
    config: SyntheticTraceConfig, seed: int = 0, lazy: bool = False
) -> Trace:
    """One-call vectorized synthesis (see :class:`FleetTraceSynthesizer`)."""
    return FleetTraceSynthesizer(config, seed=seed).generate(lazy=lazy)
